#include "server/service.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "apps/bfs.h"
#include "apps/connected_components.h"
#include "apps/msbfs.h"
#include "apps/pagerank.h"
#include "core/session.h"
#include "graph/store.h"
#include "platform/cpu_features.h"
#include "platform/resource.h"
#include "telemetry/report.h"
#include "telemetry/telemetry.h"

namespace grazelle::server {

namespace {

namespace json = telemetry::json;

[[nodiscard]] EngineOptions options_for(const Request& r, unsigned threads,
                                        const ServiceConfig& config,
                                        const GraphContext& context) {
  EngineOptions o;
  o.num_threads = threads;
  o.numa_nodes = 1;
  o.gating.enabled = r.gating;
  o.blocking.enabled = r.blocking;
  o.lanes = r.lanes == "4"   ? LanePolicy::k4
            : r.lanes == "8" ? LanePolicy::k8
                             : LanePolicy::kAuto;
  o.direction.select = config.direction;
  // Warm-start the controller from the sidecar (or what an earlier
  // request on this context already learned): with a seeded model the
  // first iteration runs at steady-state knobs, not cold defaults.
  o.tuning = context.tuning_for(r.op);
  return o;
}

/// Fills the RunReport context fields the way grazelle_run does, so a
/// served report diffs cleanly against a one-shot run's. Reads the
/// session's *pinned* graph, never the context head — a concurrent
/// ingest may already have published a newer epoch.
void fill_context(RunReport& rep, const Request& r, const std::string& graph,
                  const Graph& pinned, unsigned threads, bool vectorized,
                  unsigned prefetch_distance,
                  EngineSelect direction = EngineSelect::kAdaptive) {
  rep.app = r.op;
  rep.graph = graph;
  rep.engine = direction == EngineSelect::kAdaptive ? "adaptive" : "auto";
  rep.pull_mode = "sa";
  rep.threads = threads;
  rep.vectorized = vectorized;
  rep.num_vertices = pinned.num_vertices();
  rep.num_edges = pinned.num_edges();
  rep.graph_mapped = pinned.mapped();
  rep.prefetch_distance = prefetch_distance;
}

/// One success-response line for a run op. `values_raw` empty = omit.
[[nodiscard]] std::string run_response(const Request& r,
                                       const RunReport& rep,
                                       std::uint64_t batched,
                                       const char* value_type,
                                       const std::string& values_raw) {
  json::ObjectWriter w;
  w.field("id", r.id)
      .field("ok", true)
      .field("protocol_version", kProtocolVersion)
      .field("op", r.op)
      .field("graph", r.graph);
  if (r.op == "bfs") {
    w.field("source", static_cast<std::uint64_t>(r.source));
    w.field("batched", batched);
  }
  w.field("value_type", value_type);
  if (!values_raw.empty()) w.field_raw("values", values_raw);
  w.field_raw("report", rep.to_json());
  return w.str();
}

}  // namespace

Service::Service(ServiceConfig config) : config_(config) {
  config_.workers = std::max(1u, config_.workers);
  config_.threads_per_worker = std::max(1u, config_.threads_per_worker);
  config_.queue_cap = std::max<std::size_t>(1, config_.queue_cap);
  config_.batch_max =
      std::clamp(config_.batch_max, 1u, apps::MultiSourceBfs::kMaxSources);
  if (config_.default_iterations == 0) config_.default_iterations = 16;
}

Service::~Service() { stop(); }

void Service::add_graph(const std::string& name,
                        std::shared_ptr<GraphContext> context) {
  graphs_[name] = std::move(context);
}

void Service::open_graph(const std::string& name, const std::string& path) {
  add_graph(name, GraphContext::open_shared(path, name));
}

bool Service::has_graph(const std::string& name) const {
  return graphs_.count(name) != 0;
}

std::vector<std::string> Service::graph_names() const {
  std::vector<std::string> names;
  names.reserve(graphs_.size());
  for (const auto& [name, context] : graphs_) names.push_back(name);
  return names;
}

void Service::start() {
  {
    std::lock_guard<std::mutex> guard(lock_);
    if (started_) return;
    started_ = true;
    stopping_ = false;
  }
  for (unsigned i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

void Service::stop() {
  std::deque<Job> leftover;
  {
    std::lock_guard<std::mutex> guard(lock_);
    stopping_ = true;
    leftover.swap(queue_);
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  {
    std::lock_guard<std::mutex> guard(lock_);
    started_ = false;
  }
  // Write learned tuning back to each container's sidecar (graph
  // close). Best-effort by contract: persist_tuning swallows I/O
  // failures, and pre-v5 containers simply report nothing to write.
  for (auto& [name, context] : graphs_) {
    if (context->tuning_persistable()) context->persist_tuning();
  }
  // Every accepted request still gets its reply.
  for (Job& job : leftover) {
    rejected_overload_.fetch_add(1, std::memory_order_relaxed);
    job.reply(error_response(job.request.id, ErrorCode::kOverloaded,
                             "server shutting down"));
  }
}

void Service::submit(const std::string& line, Reply reply) {
  received_.fetch_add(1, std::memory_order_relaxed);
  ParsedRequest parsed = parse_request(line);
  if (!parsed.ok) {
    rejected_bad_.fetch_add(1, std::memory_order_relaxed);
    reply(error_response(parsed.request.id, ErrorCode::kBadRequest,
                         parsed.error));
    return;
  }
  const Request& r = parsed.request;

  if (r.op == "stats" || r.op == "list") {
    reply(immediate_response(r));
    served_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  const auto it = graphs_.find(r.graph);
  if (it == graphs_.end()) {
    rejected_bad_.fetch_add(1, std::memory_order_relaxed);
    reply(error_response(r.id, ErrorCode::kUnknownGraph,
                         "graph not served: " + r.graph));
    return;
  }
  const GraphContext& context = *it->second;

  if (r.op == "bfs" && r.source >= context.num_vertices()) {
    rejected_bad_.fetch_add(1, std::memory_order_relaxed);
    reply(error_response(r.id, ErrorCode::kBadRequest, "source out of range"));
    return;
  }
  if (r.op == "degree") {
    if (r.vertex >= context.num_vertices()) {
      rejected_bad_.fetch_add(1, std::memory_order_relaxed);
      reply(
          error_response(r.id, ErrorCode::kBadRequest, "vertex out of range"));
      return;
    }
    // Point query: answered inline off a pinned epoch — no session, no
    // queue. The snapshot keeps the arrays alive (and the read safe)
    // across a concurrent ingest's publish.
    const GraphContext::Snapshot snap = context.snapshot();
    reply(json::ObjectWriter()
              .field("id", r.id)
              .field("ok", true)
              .field("protocol_version", kProtocolVersion)
              .field("op", r.op)
              .field("graph", r.graph)
              .field("vertex", static_cast<std::uint64_t>(r.vertex))
              .field("epoch", snap->number())
              .field("out_degree", snap->graph().out_degrees()[r.vertex])
              .field("in_degree", snap->graph().in_degrees()[r.vertex])
              .str());
    served_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  // pr / cc / bfs / ingest run on the worker group behind the bounded
  // queue (admission control covers mutations too).
  {
    std::lock_guard<std::mutex> guard(lock_);
    if (stopping_ || queue_.size() >= config_.queue_cap) {
      rejected_overload_.fetch_add(1, std::memory_order_relaxed);
      reply(error_response(r.id, ErrorCode::kOverloaded,
                           stopping_ ? "server shutting down"
                                     : "request queue full"));
      return;
    }
    queue_.push_back(Job{std::move(parsed.request), std::move(reply)});
  }
  work_cv_.notify_all();
}

ServiceCounters Service::counters() const {
  ServiceCounters c;
  c.received = received_.load(std::memory_order_relaxed);
  c.served = served_.load(std::memory_order_relaxed);
  c.rejected_overload = rejected_overload_.load(std::memory_order_relaxed);
  c.rejected_bad = rejected_bad_.load(std::memory_order_relaxed);
  c.batches = batches_.load(std::memory_order_relaxed);
  c.batched_requests = batched_requests_.load(std::memory_order_relaxed);
  c.edges_touched = edges_touched_.load(std::memory_order_relaxed);
  c.ingests = ingests_.load(std::memory_order_relaxed);
  c.ingested_ops = ingested_ops_.load(std::memory_order_relaxed);
  return c;
}

std::string Service::immediate_response(const Request& r) const {
  json::ObjectWriter w;
  w.field("id", r.id)
      .field("ok", true)
      .field("protocol_version", kProtocolVersion)
      .field("op", r.op);
  if (r.op == "list") {
    std::vector<std::string> items;
    items.reserve(graphs_.size());
    for (const auto& [name, context] : graphs_) {
      const GraphContext::Snapshot snap = context->snapshot();
      items.push_back(json::ObjectWriter()
                          .field("name", name)
                          .field("num_vertices", context->num_vertices())
                          .field("num_edges", snap->graph().num_edges())
                          .field("weighted", snap->graph().weighted())
                          .field("mapped", snap->graph().mapped())
                          .field("epoch", snap->number())
                          .str());
    }
    w.field_raw("graphs", json::array(items));
  } else {  // stats
    const ServiceCounters c = counters();
    w.field_raw("counters", json::ObjectWriter()
                                .field("received", c.received)
                                .field("served", c.served)
                                .field("rejected_overload", c.rejected_overload)
                                .field("rejected_bad", c.rejected_bad)
                                .field("batches", c.batches)
                                .field("batched_requests", c.batched_requests)
                                .field("edges_touched", c.edges_touched)
                                .field("ingests", c.ingests)
                                .field("ingested_ops", c.ingested_ops)
                                .str());
    // Per-graph streaming state: current epoch, journal depth (the
    // batches `graph_convert --compact` would fold), and ops buffered
    // but not yet published.
    std::vector<std::string> items;
    items.reserve(graphs_.size());
    for (const auto& [name, context] : graphs_) {
      items.push_back(json::ObjectWriter()
                          .field("name", name)
                          .field("epoch", context->epoch())
                          .field("journal_batches", context->journal_batches())
                          .field("pending_ops", context->pending_ops())
                          .str());
    }
    w.field_raw("graphs", json::array(items));
    w.field("peak_rss_bytes", platform::peak_rss_bytes());
  }
  return w.str();
}

void Service::worker_main() {
  // One long-lived pool per worker; successive sessions borrow it, so
  // OS threads are created once per worker, not once per request.
  ThreadPool pool(config_.threads_per_worker);
  for (;;) {
    std::vector<Job> batch;
    {
      std::unique_lock<std::mutex> lock(lock_);
      work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      batch = next_batch(lock);
    }
    execute(std::move(batch), pool);
  }
}

std::vector<Service::Job> Service::next_batch(
    std::unique_lock<std::mutex>& lock) {
  std::vector<Job> batch;
  batch.push_back(std::move(queue_.front()));
  queue_.pop_front();
  const Request head = batch.front().request;
  if (head.op != "bfs" || head.no_batch) return batch;

  const auto compatible = [&](const Request& r) {
    return r.op == "bfs" && !r.no_batch && r.graph == head.graph &&
           r.gating == head.gating && r.blocking == head.blocking &&
           r.lanes == head.lanes;
  };
  const auto harvest = [&] {
    for (auto it = queue_.begin();
         it != queue_.end() && batch.size() < config_.batch_max;) {
      if (compatible(it->request)) {
        batch.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
  };
  harvest();
  // Batch window: hold the sweep open briefly for stragglers (a client
  // burst arrives over a few reads). Skipped when already full.
  if (batch.size() < config_.batch_max && config_.batch_window_ms > 0 &&
      !stopping_) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(config_.batch_window_ms);
    while (batch.size() < config_.batch_max && !stopping_) {
      if (work_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        harvest();
        break;
      }
      harvest();
    }
  }
  return batch;
}

void Service::execute(std::vector<Job> batch, ThreadPool& pool) {
  const auto it = graphs_.find(batch.front().request.graph);
  GraphContext& context = *it->second;  // validated at submit
  if (batch.front().request.op == "ingest") {
    execute_ingest(context, batch.front());  // never coalesced
    return;
  }
#if defined(GRAZELLE_HAVE_AVX2)
  if (config_.vectorize && vector_kernels_available()) {
    run_jobs<true>(context, batch, pool);
    return;
  }
#endif
  run_jobs<false>(context, batch, pool);
}

void Service::execute_ingest(GraphContext& context, Job& job) {
  const Request& r = job.request;
  std::vector<store::DeltaOp> ops;
  ops.reserve(r.edges.size() + r.deletes.size());
  for (const EdgeSpec& e : r.edges) {
    ops.push_back(store::DeltaOp::insert(e.src, e.dst, e.weight));
  }
  for (const EdgeSpec& e : r.deletes) {
    ops.push_back(store::DeltaOp::remove(e.src, e.dst));
  }
  try {
    context.ingest(ops);
    const DeltaReport rep = context.publish();
    // Counters first: a client that has seen the reply may immediately
    // ask for stats, which must already account for this ingest.
    served_.fetch_add(1, std::memory_order_relaxed);
    ingests_.fetch_add(1, std::memory_order_relaxed);
    ingested_ops_.fetch_add(ops.size(), std::memory_order_relaxed);
    job.reply(json::ObjectWriter()
                  .field("id", r.id)
                  .field("ok", true)
                  .field("protocol_version", kProtocolVersion)
                  .field("op", r.op)
                  .field("graph", r.graph)
                  .field("epoch", rep.epoch)
                  .field("applied_ops", rep.applied_ops)
                  .field("inserted", rep.inserted)
                  .field("deleted", rep.deleted)
                  .field("insert_only", rep.insert_only)
                  .field("journaled", context.journaling())
                  .str());
  } catch (const std::invalid_argument& e) {
    // Out-of-range vertex, self-loop, …: the client's fault.
    rejected_bad_.fetch_add(1, std::memory_order_relaxed);
    job.reply(error_response(r.id, ErrorCode::kBadRequest, e.what()));
  } catch (const std::exception& e) {
    job.reply(error_response(r.id, ErrorCode::kInternal, e.what()));
  }
}

template <bool Vec>
void Service::run_jobs(GraphContext& context, std::vector<Job>& batch,
                       ThreadPool& pool) {
  const Request& first = batch.front().request;
  const unsigned threads = static_cast<unsigned>(pool.size());
  telemetry::Telemetry telem(threads);
  const EngineOptions opts = options_for(first, threads, config_, context);
  try {
    // Every branch builds its program from the session's *pinned*
    // graph (session.graph()), never context.graph(): a concurrent
    // ingest may publish a newer epoch mid-run, and the program must
    // be sized for — and read from — the epoch the session executes.
    if (first.op == "pr") {
      Session<apps::PageRank, Vec> session(context, opts, &pool);
      session.set_telemetry(&telem);
      apps::PageRank prog(session.graph(), threads);
      const unsigned iters = first.iterations != 0
                                 ? first.iterations
                                 : config_.default_iterations;
      const RunStats stats = session.run(prog, iters);
      prog.finalize();
      context.record_tuning(first.op, session.learned_tuning());
      RunReport rep = build_report(stats, &telem);
      fill_context(rep, first, first.graph, session.graph(), threads, Vec,
                   session.prefetch_distance(), config_.direction);
      batch.front().reply(run_response(
          first, rep, 0, "float64",
          first.values ? values_json(prog.ranks()) : std::string()));
    } else if (first.op == "cc") {
      Session<apps::ConnectedComponents, Vec> session(context, opts, &pool);
      session.set_telemetry(&telem);
      apps::ConnectedComponents prog(session.graph());
      session.frontier().set_all();
      const RunStats stats = session.run(prog, 1u << 20);
      context.record_tuning(first.op, session.learned_tuning());
      RunReport rep = build_report(stats, &telem);
      fill_context(rep, first, first.graph, session.graph(), threads, Vec,
                   session.prefetch_distance(), config_.direction);
      batch.front().reply(run_response(
          first, rep, 0, "uint64",
          first.values ? values_json(prog.labels()) : std::string()));
    } else if (batch.size() == 1) {
      // Single-source BFS: the plain program (parents come free from
      // kMessageIsSourceId — no attribution scan).
      Session<apps::BreadthFirstSearch, Vec> session(context, opts, &pool);
      session.set_telemetry(&telem);
      apps::BreadthFirstSearch prog(session.graph(), first.source);
      prog.seed(session.frontier());
      const RunStats stats = session.run(prog, 1u << 20);
      context.record_tuning(first.op, session.learned_tuning());
      RunReport rep = build_report(stats, &telem);
      fill_context(rep, first, first.graph, session.graph(), threads, Vec,
                   session.prefetch_distance(), config_.direction);
      batch.front().reply(run_response(
          first, rep, 1, "uint64",
          first.values ? values_json(prog.parents()) : std::string()));
    } else {
      // Coalesced BFS: one multi-source sweep, one response per source.
      std::vector<VertexId> sources;
      sources.reserve(batch.size());
      for (const Job& job : batch) sources.push_back(job.request.source);
      Session<apps::MultiSourceBfs, Vec> session(context, opts, &pool);
      session.set_telemetry(&telem);
      apps::MultiSourceBfs prog(session.graph(), sources, threads);
      prog.seed(session.frontier());
      const RunStats stats = session.run(prog, 1u << 20);
      context.record_tuning(first.op, session.learned_tuning());
      RunReport rep = build_report(stats, &telem);
      fill_context(rep, first, first.graph, session.graph(), threads, Vec,
                   session.prefetch_distance(), config_.direction);
      batches_.fetch_add(1, std::memory_order_relaxed);
      batched_requests_.fetch_add(batch.size(), std::memory_order_relaxed);
      for (std::size_t b = 0; b < batch.size(); ++b) {
        const Request& r = batch[b].request;
        batch[b].reply(run_response(
            r, rep, batch.size(), "uint64",
            r.values ? values_json(prog.parents(b)) : std::string()));
      }
    }
    served_.fetch_add(batch.size(), std::memory_order_relaxed);
    edges_touched_.fetch_add(
        telem.counters()[static_cast<unsigned>(
            telemetry::Counter::kEdgesTouched)],
        std::memory_order_relaxed);
  } catch (const std::exception& e) {
    for (Job& job : batch) {
      job.reply(
          error_response(job.request.id, ErrorCode::kInternal, e.what()));
    }
  }
}

}  // namespace grazelle::server
