#include "server/service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "apps/bfs.h"
#include "apps/connected_components.h"
#include "apps/msbfs.h"
#include "apps/pagerank.h"
#include "core/session.h"
#include "graph/store.h"
#include "platform/cpu_features.h"
#include "platform/resource.h"
#include "telemetry/report.h"
#include "telemetry/telemetry.h"

namespace grazelle::server {

namespace {

namespace json = telemetry::json;

[[nodiscard]] EngineOptions options_for(const Request& r, unsigned threads,
                                        const ServiceConfig& config,
                                        const GraphContext& context) {
  EngineOptions o;
  o.num_threads = threads;
  o.numa_nodes = 1;
  o.gating.enabled = r.gating;
  o.blocking.enabled = r.blocking;
  o.lanes = r.lanes == "4"   ? LanePolicy::k4
            : r.lanes == "8" ? LanePolicy::k8
                             : LanePolicy::kAuto;
  o.direction.select = config.direction;
  // Warm-start the controller from the sidecar (or what an earlier
  // request on this context already learned): with a seeded model the
  // first iteration runs at steady-state knobs, not cold defaults.
  o.tuning = context.tuning_for(r.op);
  return o;
}

/// Fills the RunReport context fields the way grazelle_run does, so a
/// served report diffs cleanly against a one-shot run's. Reads the
/// session's *pinned* graph, never the context head — a concurrent
/// ingest may already have published a newer epoch.
void fill_context(RunReport& rep, const Request& r, const std::string& graph,
                  const Graph& pinned, unsigned threads, bool vectorized,
                  unsigned prefetch_distance,
                  EngineSelect direction = EngineSelect::kAdaptive) {
  rep.app = r.op;
  rep.graph = graph;
  rep.engine = direction == EngineSelect::kAdaptive ? "adaptive" : "auto";
  rep.pull_mode = "sa";
  rep.threads = threads;
  rep.vectorized = vectorized;
  rep.num_vertices = pinned.num_vertices();
  rep.num_edges = pinned.num_edges();
  rep.graph_mapped = pinned.mapped();
  rep.prefetch_distance = prefetch_distance;
}

/// One success-response line for a run op. `values_raw` empty = omit.
[[nodiscard]] std::string run_response(const Request& r,
                                       const RunReport& rep,
                                       std::uint64_t batched,
                                       const char* value_type,
                                       const std::string& values_raw) {
  json::ObjectWriter w;
  w.field("id", r.id)
      .field("ok", true)
      .field("protocol_version", kProtocolVersion)
      .field("op", r.op)
      .field("graph", r.graph);
  if (r.op == "bfs") {
    w.field("source", static_cast<std::uint64_t>(r.source));
    w.field("batched", batched);
  }
  w.field("value_type", value_type);
  if (!values_raw.empty()) w.field_raw("values", values_raw);
  w.field_raw("report", rep.to_json());
  return w.str();
}

/// Formats a request id for the flight recorder's fixed id slot.
struct IdBuf {
  char buf[24];
  unsigned len;
  explicit IdBuf(std::uint64_t id) {
    len = static_cast<unsigned>(std::snprintf(
        buf, sizeof(buf), "%llu", static_cast<unsigned long long>(id)));
  }
  [[nodiscard]] std::string_view view() const { return {buf, len}; }
};

}  // namespace

OpIndex op_index(const std::string& op) noexcept {
  for (unsigned i = 0; i + 1 < kNumOps; ++i) {  // kUnknown is the fallback
    if (op == kOpNames[i]) return static_cast<OpIndex>(i);
  }
  return OpIndex::kUnknown;
}

Service::Service(ServiceConfig config)
    : config_(config),
      start_time_(std::chrono::steady_clock::now()),
      recorder_(config.flight_capacity) {
  config_.workers = std::max(1u, config_.workers);
  config_.threads_per_worker = std::max(1u, config_.threads_per_worker);
  config_.queue_cap = std::max<std::size_t>(1, config_.queue_cap);
  config_.batch_max =
      std::clamp(config_.batch_max, 1u, apps::MultiSourceBfs::kMaxSources);
  if (config_.default_iterations == 0) config_.default_iterations = 16;
  if (config_.metrics) {
    registry_ = std::make_unique<telemetry::metrics::Registry>();
    register_instruments();
  }
}

Service::~Service() { stop(); }

void Service::register_instruments() {
  telemetry::metrics::Registry& reg = *registry_;
  constexpr double kUsToS = 1e-6;
  for (unsigned i = 0; i < kNumOps; ++i) {
    const std::string op = kOpNames[i];
    op_instruments_[i].total = reg.histogram(
        "grazelle_request_duration_seconds",
        "End-to-end request latency, submit to reply", {{"op", op}}, kUsToS);
    for (unsigned o = 0; o < kNumOutcomes; ++o) {
      outcome_counters_[i * kNumOutcomes + o] = reg.counter(
          "grazelle_requests_total", "Requests by op and terminal outcome",
          {{"op", op}, {"outcome", kOutcomeNames[o]}});
    }
  }
  // Stage breakdown exists only for ops that traverse the worker queue.
  for (const OpIndex qop :
       {OpIndex::kPr, OpIndex::kCc, OpIndex::kBfs, OpIndex::kIngest}) {
    const unsigned i = static_cast<unsigned>(qop);
    const std::string op = kOpNames[i];
    const auto stage = [&](const char* name) {
      return reg.histogram("grazelle_request_stage_seconds",
                           "Per-stage request latency",
                           {{"op", op}, {"stage", name}}, kUsToS);
    };
    op_instruments_[i].queue_wait = stage("queue_wait");
    op_instruments_[i].coalesce = stage("coalesce_wait");
    op_instruments_[i].execute = stage("execute");
    op_instruments_[i].reply = stage("reply_serialize");
  }
  ingest_batch_hist_ =
      reg.histogram("grazelle_ingest_batch_ops",
                    "Delta ops per published ingest batch", {}, 1.0);
  tuner_probes_ = reg.counter("grazelle_tuner_probes_total",
                              "Direction-controller probe iterations");
  tuner_switches_ = reg.counter("grazelle_direction_switches_total",
                                "Push/pull direction switches across runs");
  tuner_retunes_ = reg.counter("grazelle_drift_retunes_total",
                               "Drift-triggered parameter re-probes");
  edges_counter_ =
      reg.counter("grazelle_edges_touched_total", "Edges touched by all runs");
  batches_counter_ = reg.counter("grazelle_bfs_batches_total",
                                 "Coalesced multi-source BFS sweeps");
  batched_counter_ = reg.counter("grazelle_bfs_batched_requests_total",
                                 "BFS requests absorbed into sweeps");
  ingests_counter_ =
      reg.counter("grazelle_ingests_total", "Ingest batches published");
  ingested_ops_counter_ = reg.counter("grazelle_ingested_ops_total",
                                      "Delta ops across ingest batches");
  queue_depth_gauge_ =
      reg.gauge("grazelle_queue_depth", "Requests waiting in the admission queue");
  in_flight_gauge_ =
      reg.gauge("grazelle_in_flight_requests", "Requests currently executing");
  uptime_gauge_ =
      reg.gauge("grazelle_uptime_seconds", "Seconds since service start");
  graphs_gauge_ = reg.gauge("grazelle_graphs_served", "Graphs in the fleet");
}

void Service::observe_request(OpIndex op, std::uint64_t id, Outcome outcome,
                              std::uint64_t start_us,
                              std::uint64_t end_us) noexcept {
  note_outcome(op, outcome);
  const unsigned i = static_cast<unsigned>(op);
  const std::uint64_t dur = end_us >= start_us ? end_us - start_us : 0;
  recorder_.record("request", kOpNames[i], IdBuf(id).view(), start_us, dur,
                   kOutcomeNames[static_cast<unsigned>(outcome)]);
  if (registry_ != nullptr && op_instruments_[i].total != nullptr) {
    op_instruments_[i].total->record(dur);
  }
}

void Service::add_graph(const std::string& name,
                        std::shared_ptr<GraphContext> context) {
  graphs_[name] = std::move(context);
  if (registry_ != nullptr) {
    GraphGauges g;
    g.epoch = registry_->gauge("grazelle_graph_epoch",
                               "Published epoch number", {{"graph", name}});
    g.journal =
        registry_->gauge("grazelle_graph_journal_batches",
                         "Journaled delta batches", {{"graph", name}});
    g.pending = registry_->gauge("grazelle_graph_pending_ops",
                                 "Buffered unpublished delta ops",
                                 {{"graph", name}});
    graph_gauges_[name] = g;
  }
}

void Service::open_graph(const std::string& name, const std::string& path) {
  add_graph(name, GraphContext::open_shared(path, name));
}

bool Service::has_graph(const std::string& name) const {
  return graphs_.count(name) != 0;
}

std::vector<std::string> Service::graph_names() const {
  std::vector<std::string> names;
  names.reserve(graphs_.size());
  for (const auto& [name, context] : graphs_) names.push_back(name);
  return names;
}

void Service::start() {
  {
    std::lock_guard<std::mutex> guard(lock_);
    if (started_) return;
    started_ = true;
    stopping_ = false;
  }
  for (unsigned i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

void Service::stop() {
  std::deque<Job> leftover;
  {
    std::lock_guard<std::mutex> guard(lock_);
    stopping_ = true;
    leftover.swap(queue_);
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  {
    std::lock_guard<std::mutex> guard(lock_);
    started_ = false;
  }
  // Write learned tuning back to each container's sidecar (graph
  // close). Best-effort by contract: persist_tuning swallows I/O
  // failures, and pre-v5 containers simply report nothing to write.
  for (auto& [name, context] : graphs_) {
    if (context->tuning_persistable()) context->persist_tuning();
  }
  // Every accepted request still gets its reply.
  for (Job& job : leftover) {
    rejected_overload_.fetch_add(1, std::memory_order_relaxed);
    job.reply(error_response(job.request.id, ErrorCode::kOverloaded,
                             "server shutting down"));
    observe_request(op_index(job.request.op), job.request.id,
                    Outcome::kOverloaded, job.submitted_us,
                    recorder_.now_us());
  }
}

void Service::submit(const std::string& line, Reply reply, Scope scope) {
  received_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t t0 = recorder_.now_us();
  ParsedRequest parsed = parse_request(line);
  if (!parsed.ok) {
    rejected_bad_.fetch_add(1, std::memory_order_relaxed);
    reply(error_response(parsed.request.id, ErrorCode::kBadRequest,
                         parsed.error));
    observe_request(op_index(parsed.request.op), parsed.request.id,
                    Outcome::kBadRequest, t0, recorder_.now_us());
    return;
  }
  const Request& r = parsed.request;
  const OpIndex op = op_index(r.op);

  const bool observability_op = r.op == "stats" || r.op == "list" ||
                                r.op == "metrics" || r.op == "dump";
  if (scope == Scope::kObservability && !observability_op) {
    rejected_bad_.fetch_add(1, std::memory_order_relaxed);
    reply(error_response(r.id, ErrorCode::kBadRequest,
                         "op not allowed on the metrics socket: " + r.op));
    observe_request(op, r.id, Outcome::kBadRequest, t0, recorder_.now_us());
    return;
  }

  if (r.op == "stats" || r.op == "list") {
    reply(immediate_response(r));
    served_.fetch_add(1, std::memory_order_relaxed);
    observe_request(op, r.id, Outcome::kOk, t0, recorder_.now_us());
    return;
  }

  if (r.op == "metrics") {
    if (registry_ == nullptr) {
      rejected_bad_.fetch_add(1, std::memory_order_relaxed);
      reply(error_response(r.id, ErrorCode::kBadRequest,
                           "metrics registry disabled"));
      observe_request(op, r.id, Outcome::kBadRequest, t0, recorder_.now_us());
      return;
    }
    json::ObjectWriter w;
    w.field("id", r.id)
        .field("ok", true)
        .field("protocol_version", kProtocolVersion)
        .field("op", r.op)
        .field("format", r.format);
    if (r.format == "prometheus") {
      w.field("exposition", metrics_prometheus());
    } else {
      w.field_raw("metrics", metrics_json());
    }
    reply(w.str());
    served_.fetch_add(1, std::memory_order_relaxed);
    observe_request(op, r.id, Outcome::kOk, t0, recorder_.now_us());
    return;
  }

  if (r.op == "dump") {
    // Inline chrome-trace JSON of the flight ring (always available —
    // the recorder has no off switch).
    reply(json::ObjectWriter()
              .field("id", r.id)
              .field("ok", true)
              .field("protocol_version", kProtocolVersion)
              .field("op", r.op)
              .field("events_recorded", recorder_.total_recorded())
              .field("ring_capacity",
                     static_cast<std::uint64_t>(recorder_.capacity()))
              .field_raw("trace", recorder_.chrome_trace_json())
              .str());
    served_.fetch_add(1, std::memory_order_relaxed);
    observe_request(op, r.id, Outcome::kOk, t0, recorder_.now_us());
    return;
  }

  const auto it = graphs_.find(r.graph);
  if (it == graphs_.end()) {
    rejected_bad_.fetch_add(1, std::memory_order_relaxed);
    reply(error_response(r.id, ErrorCode::kUnknownGraph,
                         "graph not served: " + r.graph));
    observe_request(op, r.id, Outcome::kBadRequest, t0, recorder_.now_us());
    return;
  }
  const GraphContext& context = *it->second;

  if (r.op == "bfs" && r.source >= context.num_vertices()) {
    rejected_bad_.fetch_add(1, std::memory_order_relaxed);
    reply(error_response(r.id, ErrorCode::kBadRequest, "source out of range"));
    observe_request(op, r.id, Outcome::kBadRequest, t0, recorder_.now_us());
    return;
  }
  if (r.op == "degree") {
    if (r.vertex >= context.num_vertices()) {
      rejected_bad_.fetch_add(1, std::memory_order_relaxed);
      reply(
          error_response(r.id, ErrorCode::kBadRequest, "vertex out of range"));
      observe_request(op, r.id, Outcome::kBadRequest, t0, recorder_.now_us());
      return;
    }
    // Point query: answered inline off a pinned epoch — no session, no
    // queue. The snapshot keeps the arrays alive (and the read safe)
    // across a concurrent ingest's publish.
    const GraphContext::Snapshot snap = context.snapshot();
    reply(json::ObjectWriter()
              .field("id", r.id)
              .field("ok", true)
              .field("protocol_version", kProtocolVersion)
              .field("op", r.op)
              .field("graph", r.graph)
              .field("vertex", static_cast<std::uint64_t>(r.vertex))
              .field("epoch", snap->number())
              .field("out_degree", snap->graph().out_degrees()[r.vertex])
              .field("in_degree", snap->graph().in_degrees()[r.vertex])
              .str());
    served_.fetch_add(1, std::memory_order_relaxed);
    observe_request(op, r.id, Outcome::kOk, t0, recorder_.now_us());
    return;
  }

  // pr / cc / bfs / ingest run on the worker group behind the bounded
  // queue (admission control covers mutations too).
  {
    std::lock_guard<std::mutex> guard(lock_);
    if (stopping_ || queue_.size() >= config_.queue_cap) {
      rejected_overload_.fetch_add(1, std::memory_order_relaxed);
      reply(error_response(r.id, ErrorCode::kOverloaded,
                           stopping_ ? "server shutting down"
                                     : "request queue full"));
      observe_request(op, r.id, Outcome::kOverloaded, t0, recorder_.now_us());
      return;
    }
    Job job{std::move(parsed.request), std::move(reply)};
    job.submitted_us = t0;
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_all();
}

ServiceCounters Service::counters() const {
  ServiceCounters c;
  c.received = received_.load(std::memory_order_relaxed);
  c.served = served_.load(std::memory_order_relaxed);
  c.rejected_overload = rejected_overload_.load(std::memory_order_relaxed);
  c.rejected_bad = rejected_bad_.load(std::memory_order_relaxed);
  c.batches = batches_.load(std::memory_order_relaxed);
  c.batched_requests = batched_requests_.load(std::memory_order_relaxed);
  c.edges_touched = edges_touched_.load(std::memory_order_relaxed);
  c.ingests = ingests_.load(std::memory_order_relaxed);
  c.ingested_ops = ingested_ops_.load(std::memory_order_relaxed);
  return c;
}

void Service::collect() {
  if (registry_ == nullptr) return;
  // Mirror the always-on tables into registry counters; scrape-time
  // set() keeps the hot path down to one table bump.
  for (unsigned i = 0; i < kNumOps * kNumOutcomes; ++i) {
    outcome_counters_[i]->set(op_outcomes_[i].load(std::memory_order_relaxed));
  }
  edges_counter_->set(edges_touched_.load(std::memory_order_relaxed));
  batches_counter_->set(batches_.load(std::memory_order_relaxed));
  batched_counter_->set(batched_requests_.load(std::memory_order_relaxed));
  ingests_counter_->set(ingests_.load(std::memory_order_relaxed));
  ingested_ops_counter_->set(ingested_ops_.load(std::memory_order_relaxed));
  {
    std::lock_guard<std::mutex> guard(lock_);
    queue_depth_gauge_->set(static_cast<double>(queue_.size()));
  }
  in_flight_gauge_->set(
      static_cast<double>(in_flight_.load(std::memory_order_relaxed)));
  uptime_gauge_->set(uptime_seconds());
  graphs_gauge_->set(static_cast<double>(graphs_.size()));
  for (const auto& [name, context] : graphs_) {
    const auto it = graph_gauges_.find(name);
    if (it == graph_gauges_.end()) continue;
    it->second.epoch->set(static_cast<double>(context->epoch()));
    it->second.journal->set(static_cast<double>(context->journal_batches()));
    it->second.pending->set(static_cast<double>(context->pending_ops()));
  }
}

std::string Service::metrics_json() {
  if (registry_ == nullptr) return "{}";
  collect();
  return registry_->json();
}

std::string Service::metrics_prometheus() {
  if (registry_ == nullptr) return "";
  collect();
  return registry_->prometheus_text();
}

std::string Service::immediate_response(const Request& r) const {
  json::ObjectWriter w;
  w.field("id", r.id)
      .field("ok", true)
      .field("protocol_version", kProtocolVersion)
      .field("op", r.op);
  if (r.op == "list") {
    std::vector<std::string> items;
    items.reserve(graphs_.size());
    for (const auto& [name, context] : graphs_) {
      const GraphContext::Snapshot snap = context->snapshot();
      items.push_back(json::ObjectWriter()
                          .field("name", name)
                          .field("num_vertices", context->num_vertices())
                          .field("num_edges", snap->graph().num_edges())
                          .field("weighted", snap->graph().weighted())
                          .field("mapped", snap->graph().mapped())
                          .field("epoch", snap->number())
                          .str());
    }
    w.field_raw("graphs", json::array(items));
  } else {  // stats
    const ServiceCounters c = counters();
    w.field("uptime_seconds", uptime_seconds());
    w.field_raw("counters", json::ObjectWriter()
                                .field("received", c.received)
                                .field("served", c.served)
                                .field("rejected_overload", c.rejected_overload)
                                .field("rejected_bad", c.rejected_bad)
                                .field("batches", c.batches)
                                .field("batched_requests", c.batched_requests)
                                .field("edges_touched", c.edges_touched)
                                .field("ingests", c.ingests)
                                .field("ingested_ops", c.ingested_ops)
                                .str());
    // Per-op totals by terminal outcome — the richer breakdown the
    // `metrics` op also mirrors, available to plain stats scrapers.
    json::ObjectWriter requests;
    for (unsigned i = 0; i < kNumOps; ++i) {
      json::ObjectWriter per_op;
      bool any = false;
      for (unsigned o = 0; o < kNumOutcomes; ++o) {
        const std::uint64_t n =
            op_outcomes_[i * kNumOutcomes + o].load(std::memory_order_relaxed);
        per_op.field(kOutcomeNames[o], n);
        any = any || n != 0;
      }
      if (any) requests.field_raw(kOpNames[i], per_op.str());
    }
    w.field_raw("requests", requests.str());
    // Per-graph streaming state: current epoch, journal depth (the
    // batches `graph_convert --compact` would fold), and ops buffered
    // but not yet published.
    std::vector<std::string> items;
    items.reserve(graphs_.size());
    for (const auto& [name, context] : graphs_) {
      items.push_back(json::ObjectWriter()
                          .field("name", name)
                          .field("epoch", context->epoch())
                          .field("journal_batches", context->journal_batches())
                          .field("pending_ops", context->pending_ops())
                          .str());
    }
    w.field_raw("graphs", json::array(items));
    w.field("peak_rss_bytes", platform::peak_rss_bytes());
  }
  return w.str();
}

void Service::worker_main() {
  // One long-lived pool per worker; successive sessions borrow it, so
  // OS threads are created once per worker, not once per request.
  ThreadPool pool(config_.threads_per_worker);
  for (;;) {
    std::vector<Job> batch;
    {
      std::unique_lock<std::mutex> lock(lock_);
      work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      batch = next_batch(lock);
    }
    execute(std::move(batch), pool);
  }
}

std::vector<Service::Job> Service::next_batch(
    std::unique_lock<std::mutex>& lock) {
  std::vector<Job> batch;
  const std::uint64_t now = recorder_.now_us();
  batch.push_back(std::move(queue_.front()));
  batch.back().dequeued_us = now;
  queue_.pop_front();
  const Request head = batch.front().request;
  if (head.op != "bfs" || head.no_batch) return batch;

  const auto compatible = [&](const Request& r) {
    return r.op == "bfs" && !r.no_batch && r.graph == head.graph &&
           r.gating == head.gating && r.blocking == head.blocking &&
           r.lanes == head.lanes;
  };
  const auto harvest = [&] {
    const std::uint64_t t = recorder_.now_us();
    for (auto it = queue_.begin();
         it != queue_.end() && batch.size() < config_.batch_max;) {
      if (compatible(it->request)) {
        batch.push_back(std::move(*it));
        batch.back().dequeued_us = t;
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
  };
  harvest();
  // Batch window: hold the sweep open briefly for stragglers (a client
  // burst arrives over a few reads). Skipped when already full.
  if (batch.size() < config_.batch_max && config_.batch_window_ms > 0 &&
      !stopping_) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(config_.batch_window_ms);
    while (batch.size() < config_.batch_max && !stopping_) {
      if (work_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        harvest();
        break;
      }
      harvest();
    }
  }
  return batch;
}

void Service::execute(std::vector<Job> batch, ThreadPool& pool) {
  const auto it = graphs_.find(batch.front().request.graph);
  GraphContext& context = *it->second;  // validated at submit
  in_flight_.fetch_add(static_cast<std::int64_t>(batch.size()),
                       std::memory_order_relaxed);
  if (batch.front().request.op == "ingest") {
    execute_ingest(context, batch.front());  // never coalesced
  } else {
#if defined(GRAZELLE_HAVE_AVX2)
    if (config_.vectorize && vector_kernels_available()) {
      run_jobs<true>(context, batch, pool);
    } else {
      run_jobs<false>(context, batch, pool);
    }
#else
    run_jobs<false>(context, batch, pool);
#endif
  }
  in_flight_.fetch_sub(static_cast<std::int64_t>(batch.size()),
                       std::memory_order_relaxed);
}

void Service::execute_ingest(GraphContext& context, Job& job) {
  const Request& r = job.request;
  constexpr unsigned kIngestIdx = static_cast<unsigned>(OpIndex::kIngest);
  const OpInstruments& inst = op_instruments_[kIngestIdx];
  const std::uint64_t exec_start = recorder_.now_us();
  std::vector<store::DeltaOp> ops;
  ops.reserve(r.edges.size() + r.deletes.size());
  for (const EdgeSpec& e : r.edges) {
    ops.push_back(store::DeltaOp::insert(e.src, e.dst, e.weight));
  }
  for (const EdgeSpec& e : r.deletes) {
    ops.push_back(store::DeltaOp::remove(e.src, e.dst));
  }
  Outcome outcome = Outcome::kOk;
  try {
    context.ingest(ops);
    const DeltaReport rep = context.publish();
    // Counters first: a client that has seen the reply may immediately
    // ask for stats, which must already account for this ingest.
    served_.fetch_add(1, std::memory_order_relaxed);
    ingests_.fetch_add(1, std::memory_order_relaxed);
    ingested_ops_.fetch_add(ops.size(), std::memory_order_relaxed);
    const std::uint64_t exec_done = recorder_.now_us();
    job.reply(json::ObjectWriter()
                  .field("id", r.id)
                  .field("ok", true)
                  .field("protocol_version", kProtocolVersion)
                  .field("op", r.op)
                  .field("graph", r.graph)
                  .field("epoch", rep.epoch)
                  .field("applied_ops", rep.applied_ops)
                  .field("inserted", rep.inserted)
                  .field("deleted", rep.deleted)
                  .field("insert_only", rep.insert_only)
                  .field("journaled", context.journaling())
                  .str());
    const std::uint64_t done = recorder_.now_us();
    if (registry_ != nullptr) {
      ingest_batch_hist_->record(ops.size());
      inst.queue_wait->record(job.dequeued_us - job.submitted_us);
      inst.coalesce->record(exec_start - job.dequeued_us);
      inst.execute->record(exec_done - exec_start);
      inst.reply->record(done - exec_done);
    }
    recorder_.record("phase", "ingest_apply", IdBuf(r.id).view(), exec_start,
                     exec_done - exec_start, kOpNames[kIngestIdx]);
  } catch (const std::invalid_argument& e) {
    // Out-of-range vertex, self-loop, …: the client's fault.
    rejected_bad_.fetch_add(1, std::memory_order_relaxed);
    job.reply(error_response(r.id, ErrorCode::kBadRequest, e.what()));
    outcome = Outcome::kBadRequest;
  } catch (const std::exception& e) {
    job.reply(error_response(r.id, ErrorCode::kInternal, e.what()));
    outcome = Outcome::kBadRequest;
  }
  observe_request(OpIndex::kIngest, r.id, outcome, job.submitted_us,
                  recorder_.now_us());
}

template <bool Vec>
void Service::run_jobs(GraphContext& context, std::vector<Job>& batch,
                       ThreadPool& pool) {
  const Request& first = batch.front().request;
  const OpIndex op = op_index(first.op);
  const OpInstruments& inst = op_instruments_[static_cast<unsigned>(op)];
  const unsigned threads = static_cast<unsigned>(pool.size());
  const std::uint64_t exec_start = recorder_.now_us();
  std::uint64_t exec_done = exec_start;
  telemetry::Telemetry telem(threads);
  const EngineOptions opts = options_for(first, threads, config_, context);
  try {
    // Every branch builds its program from the session's *pinned*
    // graph (session.graph()), never context.graph(): a concurrent
    // ingest may publish a newer epoch mid-run, and the program must
    // be sized for — and read from — the epoch the session executes.
    if (first.op == "pr") {
      Session<apps::PageRank, Vec> session(context, opts, &pool);
      session.set_telemetry(&telem);
      apps::PageRank prog(session.graph(), threads);
      const unsigned iters = first.iterations != 0
                                 ? first.iterations
                                 : config_.default_iterations;
      const RunStats stats = session.run(prog, iters);
      prog.finalize();
      context.record_tuning(first.op, session.learned_tuning());
      RunReport rep = build_report(stats, &telem);
      fill_context(rep, first, first.graph, session.graph(), threads, Vec,
                   session.prefetch_distance(), config_.direction);
      exec_done = recorder_.now_us();
      batch.front().reply(run_response(
          first, rep, 0, "float64",
          first.values ? values_json(prog.ranks()) : std::string()));
    } else if (first.op == "cc") {
      Session<apps::ConnectedComponents, Vec> session(context, opts, &pool);
      session.set_telemetry(&telem);
      apps::ConnectedComponents prog(session.graph());
      session.frontier().set_all();
      const RunStats stats = session.run(prog, 1u << 20);
      context.record_tuning(first.op, session.learned_tuning());
      RunReport rep = build_report(stats, &telem);
      fill_context(rep, first, first.graph, session.graph(), threads, Vec,
                   session.prefetch_distance(), config_.direction);
      exec_done = recorder_.now_us();
      batch.front().reply(run_response(
          first, rep, 0, "uint64",
          first.values ? values_json(prog.labels()) : std::string()));
    } else if (batch.size() == 1) {
      // Single-source BFS: the plain program (parents come free from
      // kMessageIsSourceId — no attribution scan).
      Session<apps::BreadthFirstSearch, Vec> session(context, opts, &pool);
      session.set_telemetry(&telem);
      apps::BreadthFirstSearch prog(session.graph(), first.source);
      prog.seed(session.frontier());
      const RunStats stats = session.run(prog, 1u << 20);
      context.record_tuning(first.op, session.learned_tuning());
      RunReport rep = build_report(stats, &telem);
      fill_context(rep, first, first.graph, session.graph(), threads, Vec,
                   session.prefetch_distance(), config_.direction);
      exec_done = recorder_.now_us();
      batch.front().reply(run_response(
          first, rep, 1, "uint64",
          first.values ? values_json(prog.parents()) : std::string()));
    } else {
      // Coalesced BFS: one multi-source sweep, one response per source.
      std::vector<VertexId> sources;
      sources.reserve(batch.size());
      for (const Job& job : batch) sources.push_back(job.request.source);
      Session<apps::MultiSourceBfs, Vec> session(context, opts, &pool);
      session.set_telemetry(&telem);
      apps::MultiSourceBfs prog(session.graph(), sources, threads);
      prog.seed(session.frontier());
      const RunStats stats = session.run(prog, 1u << 20);
      context.record_tuning(first.op, session.learned_tuning());
      RunReport rep = build_report(stats, &telem);
      fill_context(rep, first, first.graph, session.graph(), threads, Vec,
                   session.prefetch_distance(), config_.direction);
      batches_.fetch_add(1, std::memory_order_relaxed);
      batched_requests_.fetch_add(batch.size(), std::memory_order_relaxed);
      exec_done = recorder_.now_us();
      for (std::size_t b = 0; b < batch.size(); ++b) {
        const Request& r = batch[b].request;
        batch[b].reply(run_response(
            r, rep, batch.size(), "uint64",
            r.values ? values_json(prog.parents(b)) : std::string()));
      }
    }
    served_.fetch_add(batch.size(), std::memory_order_relaxed);
    const auto counter_of = [&](telemetry::Counter c) {
      return telem.counters()[static_cast<unsigned>(c)];
    };
    edges_touched_.fetch_add(counter_of(telemetry::Counter::kEdgesTouched),
                             std::memory_order_relaxed);
    const std::uint64_t done = recorder_.now_us();
    // Feed the per-run tuner activity (DESIGN.md §15) into the
    // fleet-wide counters and stage histograms.
    const std::uint64_t switches =
        counter_of(telemetry::Counter::kTunerDirectionSwitches);
    if (registry_ != nullptr) {
      tuner_probes_->add(counter_of(telemetry::Counter::kTunerProbes));
      tuner_switches_->add(switches);
      tuner_retunes_->add(counter_of(telemetry::Counter::kTunerDriftRetunes));
      for (const Job& job : batch) {
        inst.queue_wait->record(job.dequeued_us - job.submitted_us);
        inst.coalesce->record(exec_start - job.dequeued_us);
        inst.execute->record(exec_done - exec_start);
        inst.reply->record(done - exec_done);
      }
    }
    recorder_.record("phase", "execute", IdBuf(first.id).view(), exec_start,
                     exec_done - exec_start,
                     kOpNames[static_cast<unsigned>(op)]);
    if (switches != 0) {
      recorder_.record("tuner", "direction_switch", IdBuf(switches).view(),
                       exec_done, 0, kOpNames[static_cast<unsigned>(op)]);
    }
    for (const Job& job : batch) {
      observe_request(op, job.request.id, Outcome::kOk, job.submitted_us,
                      done);
    }
  } catch (const std::exception& e) {
    for (Job& job : batch) {
      job.reply(
          error_response(job.request.id, ErrorCode::kInternal, e.what()));
      observe_request(op, job.request.id, Outcome::kBadRequest,
                      job.submitted_us, recorder_.now_us());
    }
  }
}

}  // namespace grazelle::server
