// grazelle_serve wire protocol (DESIGN.md §13): line-delimited JSON
// over a Unix stream socket. One request object per line in, one
// response object per line out; responses carry the request's "id" so
// clients may pipeline. This header is the socket-free half — request
// parsing/validation and response serialization — so the whole
// protocol is unit-testable without a daemon.
//
// Request schema (unknown keys are rejected — the same fail-fast
// stance the CLI takes on unknown flags):
//   {"id": 7, "op": "bfs", "graph": "tw", "source": 12, "values": true}
//   op:         "pr" | "cc" | "bfs" | "degree" | "stats" | "list" |
//               "ingest" | "metrics" | "dump"
//   graph:      graph name (pr / cc / bfs / degree / ingest)
//   source:     BFS source vertex
//   vertex:     degree-query vertex
//   iterations: PR iteration count (0 or absent = server default)
//   values:     return the per-vertex result array (default false)
//   gating / blocking: engine knobs (default off)
//   lanes:      "4" | "8" | "auto" (default "auto")
//   no_batch:   opt a BFS request out of multi-source coalescing
//   edges:      ingest-only: edge inserts, [[src,dst] | [src,dst,weight], …]
//   deletes:    ingest-only: edge deletes, [[src,dst], …]
//   format:     metrics-only: "json" (default) | "prometheus"
//
// The "metrics" op returns the registry snapshot (DESIGN.md §16) —
// either a JSON object of instruments or the Prometheus 0.0.4 text
// exposition carried in an "exposition" string field. The "dump" op
// returns the flight recorder's ring as inline chrome-trace JSON.
// Both are immediate ops and the only ops (besides stats/list) that
// the daemon's --metrics-socket accepts.
//
// An ingest request buffers its batch into the graph's delta overlay
// (journaling it when the container is format v4) and publishes a new
// epoch (DESIGN.md §14); the response reports the published epoch and
// the effective insert/delete counts. In-flight queries keep the epoch
// they pinned.
//
// Response: {"id":…, "ok":true, …} or
//   {"id":…, "ok":false, "error": {"code":…, "message":…}} with codes
//   bad_request | unknown_graph | overloaded | internal. "overloaded"
//   is the admission-control reject: the bounded queue was full.
//
// Values serialize at %.17g so a double round-trips bit-exactly; the
// "value_type" field ("float64" | "uint64") tells clients how to
// re-render (grazelle_client re-emits %.10g to byte-match
// `grazelle_run -o` output).
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "platform/types.h"
#include "telemetry/json.h"

namespace grazelle::server {

inline constexpr unsigned kProtocolVersion = 1;

enum class ErrorCode {
  kBadRequest,    ///< malformed JSON, unknown op/key, invalid argument
  kUnknownGraph,  ///< graph name not in the served fleet
  kOverloaded,    ///< admission control: request queue at capacity
  kInternal,      ///< execution failed server-side
};

[[nodiscard]] constexpr const char* error_code_name(ErrorCode c) noexcept {
  switch (c) {
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kUnknownGraph: return "unknown_graph";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

/// One edge in an ingest batch, parsed but not yet bound to a graph
/// (range checks against the vertex count are the service's job).
struct EdgeSpec {
  VertexId src = 0;
  VertexId dst = 0;
  double weight = 0.0;
  bool has_weight = false;
};

struct Request {
  std::uint64_t id = 0;
  std::string op;
  std::string graph;
  VertexId source = 0;
  VertexId vertex = 0;
  unsigned iterations = 0;  // 0 = server default (pr only)
  bool values = false;
  bool gating = false;
  bool blocking = false;
  std::string lanes = "auto";
  bool no_batch = false;
  std::vector<EdgeSpec> edges;    // ingest: inserts
  std::vector<EdgeSpec> deletes;  // ingest: deletes
  std::string format = "json";    // metrics: snapshot rendering
};

struct ParsedRequest {
  bool ok = false;
  Request request;
  std::string error;  // set when !ok
};

/// Parses and validates one request line. Shape errors (bad JSON,
/// wrong types, unknown keys/ops, bad enum values) land in `error`;
/// graph-dependent checks (name lookup, vertex range) are the
/// service's job.
[[nodiscard]] inline ParsedRequest parse_request(const std::string& line) {
  namespace json = telemetry::json;
  ParsedRequest out;
  json::Value v;
  try {
    v = json::parse(line);
  } catch (const std::exception& e) {
    out.error = e.what();
    return out;
  }
  if (!v.is_object()) {
    out.error = "request must be a JSON object";
    return out;
  }

  const auto fail = [&](const std::string& why) {
    out.ok = false;
    out.error = why;
    return out;
  };
  const auto get_u64 = [&](const char* key, std::uint64_t& dst) {
    const json::Value& n = v.at(key);
    if (n.type != json::Value::Type::kNumber || n.num < 0 ||
        n.num != std::floor(n.num)) {
      return false;
    }
    dst = static_cast<std::uint64_t>(n.num);
    return true;
  };
  const auto get_bool = [&](const char* key, bool& dst) {
    const json::Value& b = v.at(key);
    if (b.type != json::Value::Type::kBool) return false;
    dst = b.boolean;
    return true;
  };
  const auto get_str = [&](const char* key, std::string& dst) {
    const json::Value& s = v.at(key);
    if (s.type != json::Value::Type::kString) return false;
    dst = s.str;
    return true;
  };
  const auto as_vertex = [](const json::Value& n, VertexId& dst) {
    if (n.type != json::Value::Type::kNumber || n.num < 0 ||
        n.num != std::floor(n.num)) {
      return false;
    }
    dst = static_cast<VertexId>(n.num);
    return true;
  };
  // "edges": [[src,dst] | [src,dst,weight], …]; "deletes": [[src,dst], …].
  const auto get_edges = [&](const char* key, std::vector<EdgeSpec>& dst,
                             bool allow_weight) {
    const json::Value& a = v.at(key);
    if (!a.is_array()) return false;
    dst.reserve(a.items.size());
    for (const auto& item : a.items) {
      const json::Value& e = *item;
      if (!e.is_array() || e.items.size() < 2 ||
          e.items.size() > (allow_weight ? 3u : 2u)) {
        return false;
      }
      EdgeSpec spec;
      if (!as_vertex(*e.items[0], spec.src) ||
          !as_vertex(*e.items[1], spec.dst)) {
        return false;
      }
      if (e.items.size() == 3) {
        if (e.items[2]->type != json::Value::Type::kNumber) return false;
        spec.weight = e.items[2]->num;
        spec.has_weight = true;
      }
      dst.push_back(spec);
    }
    return true;
  };

  Request& r = out.request;
  for (const auto& [key, value] : v.members) {
    (void)value;
    if (key == "id") {
      if (!get_u64("id", r.id)) return fail("id must be a non-negative integer");
    } else if (key == "op") {
      if (!get_str("op", r.op)) return fail("op must be a string");
    } else if (key == "graph") {
      if (!get_str("graph", r.graph)) return fail("graph must be a string");
    } else if (key == "source") {
      if (!get_u64("source", r.source)) {
        return fail("source must be a non-negative integer");
      }
    } else if (key == "vertex") {
      if (!get_u64("vertex", r.vertex)) {
        return fail("vertex must be a non-negative integer");
      }
    } else if (key == "iterations") {
      std::uint64_t n = 0;
      if (!get_u64("iterations", n)) {
        return fail("iterations must be a non-negative integer");
      }
      r.iterations = static_cast<unsigned>(n);
    } else if (key == "values") {
      if (!get_bool("values", r.values)) return fail("values must be a bool");
    } else if (key == "gating") {
      if (!get_bool("gating", r.gating)) return fail("gating must be a bool");
    } else if (key == "blocking") {
      if (!get_bool("blocking", r.blocking)) {
        return fail("blocking must be a bool");
      }
    } else if (key == "lanes") {
      if (!get_str("lanes", r.lanes)) return fail("lanes must be a string");
    } else if (key == "no_batch") {
      if (!get_bool("no_batch", r.no_batch)) {
        return fail("no_batch must be a bool");
      }
    } else if (key == "edges") {
      if (!get_edges("edges", r.edges, /*allow_weight=*/true)) {
        return fail("edges must be an array of [src,dst] or [src,dst,weight]");
      }
    } else if (key == "deletes") {
      if (!get_edges("deletes", r.deletes, /*allow_weight=*/false)) {
        return fail("deletes must be an array of [src,dst]");
      }
    } else if (key == "format") {
      if (!get_str("format", r.format)) return fail("format must be a string");
    } else {
      return fail("unknown key: " + key);
    }
  }

  if (r.op.empty()) return fail("missing op");
  if (r.op != "pr" && r.op != "cc" && r.op != "bfs" && r.op != "degree" &&
      r.op != "stats" && r.op != "list" && r.op != "ingest" &&
      r.op != "metrics" && r.op != "dump") {
    return fail("unknown op: " + r.op +
                " (want pr|cc|bfs|degree|stats|list|ingest|metrics|dump)");
  }
  if (r.lanes != "4" && r.lanes != "8" && r.lanes != "auto") {
    return fail("unknown lanes: " + r.lanes + " (want 4|8|auto)");
  }
  if (r.format != "json" && r.format != "prometheus") {
    return fail("unknown format: " + r.format + " (want json|prometheus)");
  }
  if (r.op != "metrics" && v.has("format")) {
    return fail("format is only valid for op metrics");
  }
  const bool needs_graph = r.op == "pr" || r.op == "cc" || r.op == "bfs" ||
                           r.op == "degree" || r.op == "ingest";
  if (needs_graph && r.graph.empty()) {
    return fail("missing graph for op " + r.op);
  }
  if (r.op == "ingest" && r.edges.empty() && r.deletes.empty()) {
    return fail("ingest needs a non-empty edges or deletes array");
  }
  if (r.op != "ingest" && (!r.edges.empty() || !r.deletes.empty())) {
    return fail("edges/deletes are only valid for op ingest");
  }
  out.ok = true;
  return out;
}

/// %.17g: enough digits that a binary64 value round-trips bit-exactly.
[[nodiscard]] inline std::string number_exact(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

[[nodiscard]] inline std::string values_json(std::span<const double> values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ",";
    out += number_exact(values[i]);
  }
  out += "]";
  return out;
}

[[nodiscard]] inline std::string values_json(
    std::span<const std::uint64_t> values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(values[i]);
  }
  out += "]";
  return out;
}

/// One error-response line (newline not included).
[[nodiscard]] inline std::string error_response(std::uint64_t id,
                                                ErrorCode code,
                                                const std::string& message) {
  namespace json = telemetry::json;
  return json::ObjectWriter()
      .field("id", id)
      .field("ok", false)
      .field_raw("error", json::ObjectWriter()
                              .field("code", error_code_name(code))
                              .field("message", message)
                              .str())
      .str();
}

}  // namespace grazelle::server
