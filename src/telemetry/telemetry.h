// Engine telemetry: near-zero-overhead instrumentation shared by every
// phase runner.
//
// Design constraints (ISSUE 2 / DESIGN.md §7):
//  * Disabled must cost nothing measurable. All hooks take a nullable
//    `Telemetry*`; when null they reduce to one well-predicted branch
//    per *chunk or phase* (never per edge), and instrumented runs are
//    bit-identical to uninstrumented runs — telemetry only observes.
//  * Per-thread everything. Each worker owns a cache-line-aligned slab
//    of counters and an event buffer; there is no shared mutable state
//    on the hot path, so recording is a plain store.
//  * Events carry wall-clock offsets from one process epoch, in
//    microseconds — exactly chrome://tracing's unit — so the trace
//    exporter (trace.h) is a straight serialization.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <vector>

#include "telemetry/pmu.h"

namespace grazelle::telemetry {

/// Monotonic counters the engines maintain. Names (counter_name) are
/// stable: they are RunReport JSON keys.
enum class Counter : unsigned {
  kEdgesTouched,        ///< edge lanes examined by an Edge phase
  kVectorsVisited,      ///< edge vectors walked by pull phases
  kVectorsSkipped,      ///< edge vectors skipped by the occupancy gate
  kChunksExecuted,      ///< scheduler chunks run to completion
  kChunksStolen,        ///< chunks claimed from another thread's deque
  kMergeFolds,          ///< merge-buffer slots folded after pull phases
  kGateBuilds,          ///< candidate-bitmap constructions
  kPushUpdates,         ///< atomic combines issued by push phases
  kVertexUpdates,       ///< vertices whose apply() ran
  kFrontierActivations, ///< vertices that joined a next frontier
  kPoolTasks,           ///< fork-join tasks executed by pool threads
  kAsyncRelaxations,    ///< worklist pops in the async engine
  kAsyncEdgeVisits,     ///< edges traversed by the async engine
  kBlocksExecuted,      ///< non-empty (chunk, source-block) segments run
  kBlockSwitches,       ///< source-block transitions inside chunks
  kTunerProbes,           ///< knob candidates measured by the autotuner
  kTunerDirectionSwitches,///< adaptive direction changes between iterations
  kTunerDriftRetunes,     ///< re-probe rounds triggered by cost drift
  kCount,
};

inline constexpr unsigned kNumCounters =
    static_cast<unsigned>(Counter::kCount);

/// Stable JSON field name for a counter.
[[nodiscard]] constexpr const char* counter_name(Counter c) noexcept {
  switch (c) {
    case Counter::kEdgesTouched: return "edges_touched";
    case Counter::kVectorsVisited: return "vectors_visited";
    case Counter::kVectorsSkipped: return "vectors_skipped";
    case Counter::kChunksExecuted: return "chunks_executed";
    case Counter::kChunksStolen: return "chunks_stolen";
    case Counter::kMergeFolds: return "merge_folds";
    case Counter::kGateBuilds: return "gate_builds";
    case Counter::kPushUpdates: return "push_updates";
    case Counter::kVertexUpdates: return "vertex_updates";
    case Counter::kFrontierActivations: return "frontier_activations";
    case Counter::kPoolTasks: return "pool_tasks";
    case Counter::kAsyncRelaxations: return "async_relaxations";
    case Counter::kAsyncEdgeVisits: return "async_edge_visits";
    case Counter::kBlocksExecuted: return "blocks_executed";
    case Counter::kBlockSwitches: return "block_switches";
    case Counter::kTunerProbes: return "tuner_probes";
    case Counter::kTunerDirectionSwitches: return "tuner_direction_switches";
    case Counter::kTunerDriftRetunes: return "tuner_drift_retunes";
    case Counter::kCount: break;
  }
  return "unknown";
}

/// Aggregated counter values, indexable by Counter.
using CounterArray = std::array<std::uint64_t, kNumCounters>;

/// One completed duration span. `name` and `arg_name` must be string
/// literals (or otherwise outlive the Telemetry object) — events store
/// the pointer, never a copy.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start_us = 0;
  std::uint64_t duration_us = 0;
  std::uint32_t tid = 0;
  const char* arg_name = nullptr;  ///< nullptr = no argument
  std::uint64_t arg = 0;
};

/// PMU counter deltas over one completed phase span, plus the span's
/// edge work (delta of the kEdgesTouched counter) so per-phase
/// cycles/edge and LLC-misses/edge are exact. Recorded only by the
/// engine's run loop (one thread), at phase granularity — never per
/// chunk, so the read syscalls cannot perturb what they measure.
struct PmuSample {
  const char* name = nullptr;  ///< phase name ("run" = whole-run sample)
  std::uint64_t start_us = 0;
  std::uint64_t duration_us = 0;
  PmuArray delta{};
  std::uint64_t edges = 0;
};

/// Per-run telemetry sink. One instance per instrumented run; attach it
/// to an Engine (and through it the ThreadPool and phase runners) with
/// Engine::set_telemetry(). Thread-safe by partitioning: thread `tid`
/// writes only slab `tid`; aggregation happens after the run on one
/// thread.
class Telemetry {
 public:
  explicit Telemetry(unsigned num_threads)
      : threads_(num_threads == 0 ? 1 : num_threads),
        epoch_(Clock::now()) {
    for (auto& t : threads_) t.events.reserve(256);
  }

  [[nodiscard]] unsigned num_threads() const noexcept {
    return static_cast<unsigned>(threads_.size());
  }

  /// Microseconds since this object's construction (the trace epoch).
  [[nodiscard]] std::uint64_t now_us() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              epoch_)
            .count());
  }

  void count(unsigned tid, Counter c, std::uint64_t n = 1) noexcept {
    slab(tid).counters[static_cast<unsigned>(c)] += n;
  }

  void record(unsigned tid, const char* name, std::uint64_t start_us,
              std::uint64_t duration_us, const char* arg_name = nullptr,
              std::uint64_t arg = 0) {
    slab(tid).events.push_back(
        {name, start_us, duration_us, static_cast<std::uint32_t>(tid),
         arg_name, arg});
  }

  /// Sum of one counter across all threads.
  [[nodiscard]] std::uint64_t total(Counter c) const noexcept {
    std::uint64_t sum = 0;
    for (const auto& t : threads_) {
      sum += t.counters[static_cast<unsigned>(c)];
    }
    return sum;
  }

  /// Snapshot of every counter, summed across threads. Counters are
  /// monotonic, so successive snapshots are element-wise non-decreasing.
  [[nodiscard]] CounterArray counters() const noexcept {
    CounterArray out{};
    for (unsigned c = 0; c < kNumCounters; ++c) {
      out[c] = total(static_cast<Counter>(c));
    }
    return out;
  }

  [[nodiscard]] const std::vector<TraceEvent>& events(unsigned tid) const {
    return threads_[tid % threads_.size()].events;
  }

  [[nodiscard]] std::uint64_t num_events() const noexcept {
    std::uint64_t n = 0;
    for (const auto& t : threads_) n += t.events.size();
    return n;
  }

  /// Attaches (or with nullptr detaches) a PMU counter source. The
  /// telemetry object only borrows it — the driver owns the Pmu and
  /// its thread attachments. With a PMU attached, phase-level
  /// ScopedSpans constructed with SpanPmu::kSample record a PmuSample.
  void set_pmu(Pmu* p) noexcept { pmu_ = p; }
  [[nodiscard]] Pmu* pmu() const noexcept { return pmu_; }

  /// Records one completed PMU phase sample. Engine-loop thread only
  /// (samples are phase-granular and the run loop is sequential).
  void record_pmu(const PmuSample& s) { pmu_samples_.push_back(s); }

  [[nodiscard]] const std::vector<PmuSample>& pmu_samples() const noexcept {
    return pmu_samples_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct alignas(64) PerThread {
    CounterArray counters{};
    std::vector<TraceEvent> events;
  };

  [[nodiscard]] PerThread& slab(unsigned tid) noexcept {
    return threads_[tid % threads_.size()];
  }

  std::vector<PerThread> threads_;
  Clock::time_point epoch_;
  Pmu* pmu_ = nullptr;
  std::vector<PmuSample> pmu_samples_;
};

/// Null-safe counter hook: the disabled path is one branch.
inline void count(Telemetry* t, unsigned tid, Counter c,
                  std::uint64_t n = 1) noexcept {
  if (t != nullptr) t->count(tid, c, n);
}

/// Whether a span also snapshots the attached PMU group. Only the
/// engine's phase-level spans (run loop, one per iteration phase) opt
/// in — per-chunk spans never do, as a group read is a syscall per
/// monitored thread and would perturb the measurement.
enum class SpanPmu : std::uint8_t { kOff, kSample };

/// RAII duration span; records on destruction. A null Telemetry makes
/// construction and destruction no-ops (no clock reads). With
/// SpanPmu::kSample and a PMU attached to the sink, the span also
/// records a PmuSample carrying the counter deltas and edge work of
/// the interval.
class ScopedSpan {
 public:
  ScopedSpan(Telemetry* t, unsigned tid, const char* name,
             const char* arg_name = nullptr, std::uint64_t arg = 0,
             SpanPmu pmu = SpanPmu::kOff) noexcept
      : t_(t), tid_(tid), name_(name), arg_name_(arg_name), arg_(arg),
        start_us_(t != nullptr ? t->now_us() : 0) {
    if (t_ != nullptr && pmu == SpanPmu::kSample && t_->pmu() != nullptr) {
      sample_pmu_ = true;
      pmu_begin_ = t_->pmu()->read();
      edges_begin_ = t_->total(Counter::kEdgesTouched);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (t_ == nullptr) return;
    const std::uint64_t duration_us = t_->now_us() - start_us_;
    t_->record(tid_, name_, start_us_, duration_us, arg_name_, arg_);
    if (sample_pmu_ && t_->pmu() != nullptr) {
      PmuSample s;
      s.name = name_;
      s.start_us = start_us_;
      s.duration_us = duration_us;
      const PmuArray end = t_->pmu()->read();
      for (unsigned c = 0; c < kNumPmuCounters; ++c) {
        s.delta[c] = end[c] - pmu_begin_[c];
      }
      s.edges = t_->total(Counter::kEdgesTouched) - edges_begin_;
      t_->record_pmu(s);
    }
  }

 private:
  Telemetry* t_;
  unsigned tid_;
  const char* name_;
  const char* arg_name_;
  std::uint64_t arg_;
  std::uint64_t start_us_;
  bool sample_pmu_ = false;
  PmuArray pmu_begin_{};
  std::uint64_t edges_begin_ = 0;
};

}  // namespace grazelle::telemetry
