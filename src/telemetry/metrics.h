// Service-grade metrics registry (DESIGN.md §16): named, labeled
// instruments — monotonic counters, gauges, and HDR-style latency
// histograms — registered once at startup and scraped concurrently
// with recording.
//
// Contracts:
//  * Recording is lock-free. Counter::add and Gauge::set are single
//    relaxed atomic ops; Histogram::record is a sharded fetch_add
//    (histogram.h). No instrument ever takes a lock on the hot path.
//  * Registration is mutex-guarded and idempotent: asking for an
//    instrument that already exists (same name + label set + type)
//    returns the existing one. Instruments live as long as the
//    registry; handles are plain pointers that never invalidate.
//  * Scraping renders two formats from one pass over the registry:
//    a JSON snapshot (telemetry/json.h writer, quantiles included)
//    and the Prometheus text exposition format, version 0.0.4
//    (`# HELP`/`# TYPE` headers, label escaping, cumulative `_bucket`
//    series with `le` boundaries, `_sum`/`_count`). Histograms carry
//    an exposition scale so internally-microsecond instruments render
//    as base-unit seconds, per Prometheus naming conventions.
//
// Naming conventions (DESIGN.md §16): every metric is prefixed
// `grazelle_`, counters end `_total`, latency histograms end
// `_seconds`, and label keys are fixed at registration — there is no
// dynamic label creation on the record path.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/histogram.h"

namespace grazelle::telemetry::metrics {

/// Ordered label set, fixed at registration ({{"op","pr"},...}).
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter. set() exists for scrape-time mirroring of
/// externally-maintained totals (the server's always-on per-op
/// tables); regular instrumentation uses add().
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void set(std::uint64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time value (queue depth, epoch number, uptime).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept {
    // Monitoring-grade accuracy: a racing add may be lost; the serving
    // paths that use add() (in-flight tracking) tolerate that, and
    // scrape-time set() callers never race at all.
    value_.store(value_.load(std::memory_order_relaxed) + d,
                 std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Lock-free latency/size distribution. Values record in integer
/// units (the server uses microseconds); `exposition_scale` converts
/// to the exposed unit at scrape time (1e-6 renders microsecond
/// records as seconds).
class Histogram {
 public:
  explicit Histogram(double exposition_scale = 1.0)
      : scale_(exposition_scale) {}

  void record(std::uint64_t v) noexcept { sharded_.record(v); }

  [[nodiscard]] HistogramSnapshot snapshot() const {
    return sharded_.snapshot();
  }
  [[nodiscard]] double exposition_scale() const noexcept { return scale_; }

 private:
  ShardedHistogram sharded_;
  double scale_;
};

/// The registry: instrument ownership + scrape rendering. One per
/// Service; tests may build their own.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Registers (or finds) an instrument. `help` is kept from the
  /// first registration of a name. Throws std::logic_error if a name
  /// is re-registered as a different instrument type.
  Counter* counter(const std::string& name, const std::string& help,
                   Labels labels = {});
  Gauge* gauge(const std::string& name, const std::string& help,
               Labels labels = {});
  Histogram* histogram(const std::string& name, const std::string& help,
                       Labels labels = {},
                       double exposition_scale = 1.0);

  /// Prometheus text exposition format 0.0.4 of every instrument.
  [[nodiscard]] std::string prometheus_text() const;

  /// JSON snapshot: one member per instrument keyed
  /// "name{label=value,...}"; histograms render as objects with
  /// count / sum / mean / p50 / p95 / p99 / p999 in the exposed unit.
  [[nodiscard]] std::string json() const;

  [[nodiscard]] std::size_t num_instruments() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    Kind kind;
    std::string name;
    std::string help;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* find_or_create(Kind kind, const std::string& name,
                        const std::string& help, Labels labels,
                        double scale);

  mutable std::mutex mu_;
  // Deque-like stability: entries are pointed into by handles, so the
  // vector stores unique_ptrs and never erases.
  std::vector<std::unique_ptr<Entry>> entries_;
};

/// Escapes a Prometheus label value: backslash, double quote, and
/// newline get backslash escapes (exposition format 0.0.4).
[[nodiscard]] std::string prometheus_escape_label(const std::string& v);

}  // namespace grazelle::telemetry::metrics
