#include "telemetry/pmu.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace grazelle::telemetry {

std::uint64_t read_tsc() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

#if defined(__linux__)

namespace {

/// perf_event_attr config for each PmuCounter slot.
struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
};

EventSpec event_spec(PmuCounter c) {
  constexpr std::uint64_t kLlcRead =
      PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8);
  switch (c) {
    case PmuCounter::kCycles:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES};
    case PmuCounter::kInstructions:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS};
    case PmuCounter::kLlcLoads:
      return {PERF_TYPE_HW_CACHE,
              kLlcRead | (PERF_COUNT_HW_CACHE_RESULT_ACCESS << 16)};
    case PmuCounter::kLlcMisses:
      return {PERF_TYPE_HW_CACHE,
              kLlcRead | (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)};
    case PmuCounter::kBranchMisses:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES};
    case PmuCounter::kStalledCycles:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_BACKEND};
    case PmuCounter::kCount: break;
  }
  return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES};
}

int perf_open(PmuCounter c, pid_t tid, int group_fd) {
  const EventSpec spec = event_spec(c);
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = spec.type;
  attr.size = sizeof(attr);
  attr.config = spec.config;
  // The leader starts disabled and the whole group is enabled with one
  // ioctl once every sibling has joined, so no counter ticks while the
  // group is still assembling.
  attr.disabled = (group_fd == -1) ? 1 : 0;
  // Counting user work only keeps the layer usable at
  // perf_event_paranoid <= 2 (the common unprivileged ceiling).
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID |
                     PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, tid, /*cpu=*/-1, group_fd, 0));
}

bool pmu_disabled_by_env() {
  const char* env = std::getenv("GRAZELLE_PMU_DISABLE");
  return env != nullptr && std::atoi(env) != 0;
}

}  // namespace

bool Pmu::open_group(pid_t tid, std::string* error) {
  Group g;
  g.leader_fd = perf_open(PmuCounter::kCycles, tid, -1);
  if (g.leader_fd < 0) {
    if (error != nullptr) {
      *error = std::string("perf_event_open(cycles): ") +
               std::strerror(errno);
    }
    return false;
  }
  g.fds.push_back(g.leader_fd);
  std::uint64_t id = 0;
  if (ioctl(g.leader_fd, PERF_EVENT_IOC_ID, &id) == 0) {
    g.ids[static_cast<unsigned>(PmuCounter::kCycles)] = id;
  }
  for (unsigned c = 1; c < kNumPmuCounters; ++c) {
    // Siblings are individually optional: a core without (say) a
    // stalled-cycles event still yields the rest of the group.
    const int fd = perf_open(static_cast<PmuCounter>(c), tid, g.leader_fd);
    if (fd < 0) continue;
    g.fds.push_back(fd);
    if (ioctl(fd, PERF_EVENT_IOC_ID, &id) == 0) g.ids[c] = id;
  }
  ioctl(g.leader_fd, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(g.leader_fd, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  groups_.push_back(std::move(g));
  return true;
}

Pmu::Pmu() : tsc_origin_(read_tsc()) {
  if (pmu_disabled_by_env()) {
    reason_ = "disabled by GRAZELLE_PMU_DISABLE";
    return;
  }
  std::string error;
  if (!open_group(/*tid=*/0, &error)) {
    reason_ = error;
    return;
  }
  available_ = true;
}

Pmu::~Pmu() {
  for (const Group& g : groups_) {
    for (int fd : g.fds) close(fd);
  }
}

bool Pmu::attach_thread(pid_t tid) {
  if (!available_) return false;
  return open_group(tid, nullptr);
}

PmuArray Pmu::read() const {
  PmuArray out{};
  if (!available_) {
    out[static_cast<unsigned>(PmuCounter::kCycles)] =
        read_tsc() - tsc_origin_;
    return out;
  }
  // PERF_FORMAT_GROUP | ID | TIME_ENABLED | TIME_RUNNING layout.
  struct ReadValue {
    std::uint64_t value;
    std::uint64_t id;
  };
  struct ReadBuffer {
    std::uint64_t nr;
    std::uint64_t time_enabled;
    std::uint64_t time_running;
    ReadValue values[kNumPmuCounters];
  };
  for (const Group& g : groups_) {
    ReadBuffer buf{};
    const ssize_t n = ::read(g.leader_fd, &buf, sizeof(buf));
    if (n < static_cast<ssize_t>(3 * sizeof(std::uint64_t))) continue;
    // Scale for multiplexing: the kernel rotates groups when more are
    // open than the PMU has slots; enabled/running extrapolates to the
    // full enabled window.
    const double scale =
        (buf.time_running > 0)
            ? static_cast<double>(buf.time_enabled) /
                  static_cast<double>(buf.time_running)
            : 1.0;
    for (std::uint64_t i = 0; i < buf.nr && i < kNumPmuCounters; ++i) {
      for (unsigned c = 0; c < kNumPmuCounters; ++c) {
        if (g.ids[c] != 0 && g.ids[c] == buf.values[i].id) {
          out[c] += static_cast<std::uint64_t>(
              static_cast<double>(buf.values[i].value) * scale);
          break;
        }
      }
    }
  }
  return out;
}

#else  // !__linux__

bool Pmu::open_group(pid_t, std::string*) { return false; }

Pmu::Pmu() : tsc_origin_(read_tsc()) {
  reason_ = "perf_event_open is Linux-only";
}

Pmu::~Pmu() = default;

bool Pmu::attach_thread(pid_t) { return false; }

PmuArray Pmu::read() const {
  PmuArray out{};
  out[static_cast<unsigned>(PmuCounter::kCycles)] = read_tsc() - tsc_origin_;
  return out;
}

#endif  // __linux__

}  // namespace grazelle::telemetry
