// Minimal JSON support for the telemetry layer: a string-building
// writer (stable field order, no allocating DOM on the write path) and
// a small recursive-descent parser used by tests and validators to
// round-trip RunReport / trace output. Deliberately tiny — objects,
// arrays, strings (with basic escapes), numbers, booleans, null — not
// a general-purpose JSON library.
#pragma once

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace grazelle::telemetry::json {

/// Escapes a string for embedding in a JSON document (quotes added).
[[nodiscard]] inline std::string quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

[[nodiscard]] inline std::string number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  // %g may emit "inf"/"nan", which JSON forbids; clamp to null.
  for (const char* bad : {"inf", "nan", "-inf", "-nan"}) {
    if (std::string(buf) == bad) return "null";
  }
  return buf;
}

[[nodiscard]] inline std::string number(std::uint64_t v) {
  return std::to_string(v);
}

/// Incremental writer for one JSON object: append fields in order,
/// close with str(). Nested raw values (arrays, objects) are appended
/// pre-serialized via field_raw.
class ObjectWriter {
 public:
  ObjectWriter& field(const std::string& key, const std::string& value) {
    return field_raw(key, quote(value));
  }
  ObjectWriter& field(const std::string& key, const char* value) {
    return field_raw(key, quote(value));
  }
  ObjectWriter& field(const std::string& key, double value) {
    return field_raw(key, number(value));
  }
  ObjectWriter& field(const std::string& key, std::uint64_t value) {
    return field_raw(key, number(value));
  }
  ObjectWriter& field(const std::string& key, unsigned value) {
    return field_raw(key, number(static_cast<std::uint64_t>(value)));
  }
  ObjectWriter& field(const std::string& key, bool value) {
    return field_raw(key, value ? "true" : "false");
  }
  ObjectWriter& field_raw(const std::string& key, const std::string& value) {
    if (!body_.empty()) body_ += ", ";
    body_ += quote(key);
    body_ += ": ";
    body_ += value;
    return *this;
  }

  [[nodiscard]] std::string str() const { return "{" + body_ + "}"; }

 private:
  std::string body_;
};

/// Joins pre-serialized values into a JSON array.
[[nodiscard]] inline std::string array(const std::vector<std::string>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += ", ";
    out += items[i];
  }
  out += "]";
  return out;
}

// ---------------------------------------------------------------------------
// Parser

struct Value;
using ValuePtr = std::shared_ptr<Value>;

/// Parsed JSON value. Numbers are stored as double (adequate for the
/// counter magnitudes and timings the telemetry layer emits).
struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double num = 0.0;
  std::string str;
  std::vector<ValuePtr> items;
  std::map<std::string, ValuePtr> members;

  [[nodiscard]] bool is_object() const { return type == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }
  [[nodiscard]] bool has(const std::string& key) const {
    return members.count(key) != 0;
  }
  /// Object member access; throws on missing key or non-object.
  [[nodiscard]] const Value& at(const std::string& key) const {
    if (type != Type::kObject) throw std::runtime_error("not an object");
    auto it = members.find(key);
    if (it == members.end()) {
      throw std::runtime_error("missing key: " + key);
    }
    return *it->second;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  [[nodiscard]] Value parse() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Value parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.type = Value::Type::kString;
        v.str = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      default: return parse_number();
    }
  }

  static Value make_bool(bool b) {
    Value v;
    v.type = Value::Type::kBool;
    v.boolean = b;
    return v;
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.type = Value::Type::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      const std::string key = parse_string();
      expect(':');
      v.members[key] = std::make_shared<Value>(parse_value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.type = Value::Type::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(std::make_shared<Value>(parse_value()));
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("bad escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("bad \\u escape");
            const unsigned code = static_cast<unsigned>(
                std::stoul(s_.substr(pos_, 4), nullptr, 16));
            pos_ += 4;
            // ASCII only — all the telemetry layer ever emits.
            out += static_cast<char>(code & 0x7f);
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
  }

  Value parse_number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    Value v;
    v.type = Value::Type::kNumber;
    try {
      v.num = std::stod(s_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

/// Parses a complete JSON document; throws std::runtime_error on
/// malformed input.
[[nodiscard]] inline Value parse(const std::string& text) {
  return Parser(text).parse();
}

}  // namespace grazelle::telemetry::json
