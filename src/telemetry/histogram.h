// HDR-style log-bucketed latency histograms (DESIGN.md §16).
//
// The bucket layout is the classic high-dynamic-range scheme: values
// below 2^kSubBits land in exact unit buckets; above that, each
// power-of-two range splits into 2^kSubBits sub-buckets, so every
// recorded value is attributed with a bounded relative error of
// 2^-kSubBits (6.25% at the default 4 sub-bucket bits) across the full
// uint64 range. Indexing is two instructions (countl_zero + shift) —
// cheap enough for per-request hot paths.
//
// Two flavors share the layout:
//  * LogHistogram — single-writer accumulation (plain uint64 buckets),
//    used by tests and anywhere ownership is per-thread already.
//  * ShardedHistogram — the serving-path instrument: kShards
//    cache-line-padded atomic bucket arrays, writers pick a shard from
//    a process-wide thread ordinal and fetch_add relaxed (no CAS
//    loops, no locks, no cross-thread contention until the thread
//    count exceeds the shard count), readers merge every shard into a
//    HistogramSnapshot at scrape time. Recording is wait-free;
//    snapshots are only eventually consistent with in-flight records,
//    which is exactly what a scrape wants.
//
// HistogramSnapshot carries the merged counts plus count/sum and
// answers quantile queries (p50/p95/p99/p999) by cumulative walk,
// returning the containing bucket's upper bound — an estimate that is
// never below the true percentile and at most one bucket width above
// it. Snapshots merge (element-wise add), so per-shard, per-process,
// or per-scrape aggregation all compose.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

namespace grazelle::telemetry {

/// Shared bucket geometry for the histogram flavors.
struct HistogramLayout {
  static constexpr unsigned kSubBits = 4;
  static constexpr unsigned kSubBuckets = 1u << kSubBits;  // 16
  /// Power-of-two groups above the exact region: values in
  /// [kSubBuckets << (g-1), kSubBuckets << g) for g = 1..kGroups.
  static constexpr unsigned kGroups = 64 - kSubBits;  // 60
  static constexpr unsigned kNumBuckets = kSubBuckets * (kGroups + 1);

  /// Bucket index of a value. Total order preserving: v <= w implies
  /// index(v) <= index(w).
  [[nodiscard]] static constexpr unsigned index(std::uint64_t v) noexcept {
    if (v < kSubBuckets) return static_cast<unsigned>(v);
    const unsigned e = 63 - static_cast<unsigned>(std::countl_zero(v));
    const unsigned shift = e - kSubBits;
    const unsigned sub =
        static_cast<unsigned>((v >> shift) & (kSubBuckets - 1));
    return (shift + 1) * kSubBuckets + sub;
  }

  /// Largest value the bucket contains (inclusive). The top bucket
  /// clamps to the uint64 maximum.
  [[nodiscard]] static constexpr std::uint64_t upper(unsigned index) noexcept {
    const unsigned group = index / kSubBuckets;
    const unsigned sub = index % kSubBuckets;
    if (group == 0) return sub;
    const unsigned shift = group - 1;
    if (shift + kSubBits >= 60) {
      // (kSubBuckets + sub + 1) << shift would overflow; the tail
      // bucket absorbs everything.
      const unsigned __int128 wide =
          static_cast<unsigned __int128>(kSubBuckets + sub + 1) << shift;
      constexpr unsigned __int128 kMax = ~static_cast<std::uint64_t>(0);
      return wide > kMax ? ~static_cast<std::uint64_t>(0)
                         : static_cast<std::uint64_t>(wide) - 1;
    }
    return ((static_cast<std::uint64_t>(kSubBuckets + sub + 1)) << shift) - 1;
  }
};

/// Merged, immutable view of a histogram at one point in time.
struct HistogramSnapshot {
  std::vector<std::uint64_t> counts;  // HistogramLayout::kNumBuckets wide
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  HistogramSnapshot() : counts(HistogramLayout::kNumBuckets, 0) {}

  /// Element-wise accumulate: snapshots of shards (or of separate
  /// histograms tracking the same quantity) compose by addition.
  void merge(const HistogramSnapshot& other) {
    for (unsigned b = 0; b < HistogramLayout::kNumBuckets; ++b) {
      counts[b] += other.counts[b];
    }
    count += other.count;
    sum += other.sum;
  }

  /// Upper bound of the bucket holding the q-quantile (q in [0, 1]).
  /// 0 for an empty histogram. The estimate is >= the exact
  /// percentile and overshoots by at most one bucket width (a 6.25%
  /// relative error at the default layout).
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept {
    if (count == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // Rank of the target observation, 1-based.
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count)));
    if (rank == 0) rank = 1;
    if (rank > count) rank = count;
    std::uint64_t cumulative = 0;
    for (unsigned b = 0; b < HistogramLayout::kNumBuckets; ++b) {
      cumulative += counts[b];
      if (cumulative >= rank) return HistogramLayout::upper(b);
    }
    return HistogramLayout::upper(HistogramLayout::kNumBuckets - 1);
  }

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Highest non-empty bucket index + 1 (0 when empty): the exposition
  /// renderer stops emitting buckets here.
  [[nodiscard]] unsigned significant_buckets() const noexcept {
    for (unsigned b = HistogramLayout::kNumBuckets; b > 0; --b) {
      if (counts[b - 1] != 0) return b;
    }
    return 0;
  }
};

/// Single-writer histogram: plain counters, no synchronization. Use
/// when the recording thread is already exclusive (per-thread slabs,
/// tests).
class LogHistogram {
 public:
  void record(std::uint64_t v) noexcept {
    ++counts_[HistogramLayout::index(v)];
    ++count_;
    sum_ += v;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }

  [[nodiscard]] HistogramSnapshot snapshot() const {
    HistogramSnapshot s;
    for (unsigned b = 0; b < HistogramLayout::kNumBuckets; ++b) {
      s.counts[b] = counts_[b];
    }
    s.count = count_;
    s.sum = sum_;
    return s;
  }

 private:
  std::array<std::uint64_t, HistogramLayout::kNumBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
};

/// Process-wide small integer identity for the calling thread, used to
/// spread concurrent writers across shards. Monotonic, never reused —
/// shard selection wraps it, so long-lived processes with thread
/// churn merely rotate which shard a new thread lands on.
[[nodiscard]] inline unsigned thread_ordinal() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

/// Lock-free multi-writer histogram: per-shard atomic buckets merged
/// at snapshot time. Writers never block or spin; readers see every
/// record that happened-before the snapshot and possibly some that
/// race with it (relaxed counters — fine for monitoring).
class ShardedHistogram {
 public:
  static constexpr unsigned kShards = 8;

  void record(std::uint64_t v) noexcept {
    Shard& s = shards_[thread_ordinal() % kShards];
    s.counts[HistogramLayout::index(v)].fetch_add(1,
                                                  std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] HistogramSnapshot snapshot() const {
    HistogramSnapshot out;
    for (const Shard& s : shards_) {
      for (unsigned b = 0; b < HistogramLayout::kNumBuckets; ++b) {
        const std::uint64_t n = s.counts[b].load(std::memory_order_relaxed);
        out.counts[b] += n;
        out.count += n;
      }
      out.sum += s.sum.load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, HistogramLayout::kNumBuckets>
        counts{};
    std::atomic<std::uint64_t> sum{0};
  };

  std::array<Shard, kShards> shards_{};
};

}  // namespace grazelle::telemetry
