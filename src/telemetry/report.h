// Run statistics and the structured RunReport.
//
// IterationStats/RunStats are the engine's always-on, lightweight
// accounting (they predate the telemetry layer and remain cheap enough
// to collect unconditionally). RunReport is the machine-readable
// superset: run stats + phase-time breakdown + telemetry counters +
// run context, serialized with stable field names by to_json(). The
// JSON schema is versioned (kReportSchemaVersion); scripts may rely on
// any field present at a given version.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/options.h"
#include "platform/cpu_features.h"
#include "platform/resource.h"
#include "telemetry/json.h"
#include "telemetry/telemetry.h"

namespace grazelle {

struct IterationStats {
  /// The engine's resolved Edge-phase decision for this iteration.
  PhasePlan plan{};
  bool used_pull = false;
  bool used_sparse_push = false;
  double edge_seconds = 0.0;
  double vertex_seconds = 0.0;
  double merge_seconds = 0.0;
  /// Load-imbalance tail wait inside the pull edge phase (threads *
  /// wall - busy); 0 for push iterations.
  double idle_seconds = 0.0;
  std::uint64_t frontier_size = 0;
  std::uint64_t changed = 0;
  /// Whether the frontier-occupancy gate was applied this iteration.
  bool gated = false;
  /// Edge vectors skipped by the occupancy gate (0 when not gated).
  std::uint64_t vectors_skipped = 0;
  /// Whether cache-blocked pull execution was applied this iteration.
  bool blocked = false;
  /// Non-empty (chunk, source-block) segments run (0 when not blocked).
  std::uint64_t blocks_executed = 0;
  /// Adaptive-mode trace (DESIGN.md §15): why the DirectionController
  /// chose this iteration's plan. nullptr under the fixed modes — the
  /// report's direction_trace array only covers adaptive iterations.
  const char* direction_reason = nullptr;
  /// Controller cost-model estimate at decision time (adaptive only).
  double estimated_cycles_per_edge = 0.0;
  /// Measured cycles/edge fed back to the model (adaptive only; from
  /// the PMU when available, the rdtsc estimate otherwise).
  double measured_cycles_per_edge = 0.0;
};

struct RunStats {
  unsigned iterations = 0;
  unsigned pull_iterations = 0;
  unsigned push_iterations = 0;
  unsigned sparse_push_iterations = 0;  // subset of push_iterations
  unsigned gated_iterations = 0;  // subset of pull_iterations
  unsigned blocked_iterations = 0;  // subset of pull_iterations
  std::uint64_t vectors_skipped = 0;  // total across gated iterations
  double total_seconds = 0.0;
  std::vector<IterationStats> per_iteration;
};

namespace telemetry {

// v2: added graph_build_seconds / graph_load_seconds / graph_mapped.
// v3: added blocked / blocks_executed per iteration and
//     blocked_iterations / peak_rss_bytes / llc_bytes /
//     prefetch_distance at top level.
// v4: added the "machine" fingerprint object and, when a PMU source
//     was attached, the "pmu" whole-run object (raw counters + ipc,
//     cycles_per_edge, llc_misses_per_edge, effective_bandwidth_gbs)
//     and the per-phase "pmu_phases" array. pmu.available=false means
//     the degraded rdtsc path supplied the cycle estimate.
// v5: added the "direction_trace" array (one entry per adaptive-mode
//     iteration: chosen phase, reason code, estimated vs measured
//     cycles/edge) and the tuner_* telemetry counters. Empty under the
//     fixed direction modes.
// v6: bounded direction_trace — at most the first and last
//     kDirectionTraceKeep adaptive iterations are serialized (a
//     long-lived serve session's CC/BFS runs may iterate thousands of
//     times); added direction_trace_truncated and
//     direction_trace_total so consumers can detect the elision.
inline constexpr unsigned kReportSchemaVersion = 6;

/// Cap on each end of the serialized direction_trace: runs with more
/// than 2 * kDirectionTraceKeep adaptive iterations keep the first and
/// last kDirectionTraceKeep entries (the interesting ones — warmup
/// probes and converged steady state) and set the truncated flag.
inline constexpr std::size_t kDirectionTraceKeep = 32;

/// Derived hardware efficiency metrics of one PMU-sampled interval.
/// Formulas (DESIGN.md §11): ipc = instructions / cycles;
/// cycles_per_edge = cycles / edges; llc_misses_per_edge = llc_misses
/// / edges; effective_bandwidth_gbs = llc_misses * 64B / seconds /
/// 1e9 (cache-line-granular memory traffic the LLC missed on).
/// Each metric is 0 when its denominator is 0.
struct PmuDerived {
  double ipc = 0.0;
  double cycles_per_edge = 0.0;
  double llc_misses_per_edge = 0.0;
  double effective_bandwidth_gbs = 0.0;
};

[[nodiscard]] inline PmuDerived derive_pmu_metrics(const PmuArray& counters,
                                                   std::uint64_t edges,
                                                   double seconds) {
  PmuDerived d;
  const auto at = [&](PmuCounter c) {
    return static_cast<double>(counters[static_cast<unsigned>(c)]);
  };
  if (at(PmuCounter::kCycles) > 0) {
    d.ipc = at(PmuCounter::kInstructions) / at(PmuCounter::kCycles);
  }
  if (edges > 0) {
    d.cycles_per_edge = at(PmuCounter::kCycles) / static_cast<double>(edges);
    d.llc_misses_per_edge =
        at(PmuCounter::kLlcMisses) / static_cast<double>(edges);
  }
  if (seconds > 0) {
    d.effective_bandwidth_gbs =
        at(PmuCounter::kLlcMisses) * 64.0 / seconds / 1e9;
  }
  return d;
}

/// PMU totals aggregated over every sample of one phase name (a phase
/// recurs across iterations; its samples sum).
struct PmuPhaseTotals {
  std::string phase;
  PmuArray counters{};
  std::uint64_t edges = 0;
  double seconds = 0.0;
};

/// Wall-clock attribution of one run, split by phase. Derived from the
/// per-iteration stats, so it is available with or without a Telemetry
/// sink attached.
struct PhaseSeconds {
  double pull = 0.0;
  double push = 0.0;
  double sparse_push = 0.0;
  double vertex = 0.0;
  double fold = 0.0;   ///< sequential merge-buffer folds
  double idle = 0.0;   ///< pull-phase load-imbalance tail wait

  [[nodiscard]] double edge_total() const noexcept {
    return pull + push + sparse_push;
  }
};

/// Structured result of one engine run: context (filled by the driver),
/// run stats, phase breakdown, and aggregated telemetry counters.
struct RunReport {
  // --- context (optional; set by the driver) ---
  std::string app;
  std::string graph;
  std::string engine;
  std::string pull_mode;
  unsigned threads = 0;
  bool vectorized = false;
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  /// Wall time spent building the data-plane sections (CSR/CSC/VSS/VSD
  /// and metadata). Exactly 0 when the graph was opened zero-copy from
  /// a packed .gzg container — the sections are mapped, not rebuilt.
  double graph_build_seconds = 0.0;
  /// Total input wall time: parse + build, or container open.
  double graph_load_seconds = 0.0;
  /// Whether the graph's arrays are borrowed from a mapped container.
  bool graph_mapped = false;
  /// Process peak resident set at report-build time (getrusage; 0 when
  /// the platform cannot report it).
  std::uint64_t peak_rss_bytes = 0;
  /// Detected last-level cache size of the host (the cache-blocking
  /// budget's baseline).
  std::uint64_t llc_bytes = 0;
  /// Software-prefetch distance the run used (0 = disabled; set by the
  /// driver from the engine).
  unsigned prefetch_distance = 0;

  RunStats stats;
  PhaseSeconds phases;
  /// Aggregated telemetry counters (all zero when no sink was attached).
  CounterArray counters{};
  bool telemetry_attached = false;

  // --- PMU observability (schema v4) ---
  /// Whether a Pmu source was attached to the telemetry sink.
  bool pmu_attached = false;
  /// False means perf_event_open was denied and pmu_totals carries the
  /// degraded rdtsc cycle estimate (other counters 0).
  bool pmu_available = false;
  /// Degradation reason ("" when available).
  std::string pmu_unavailable_reason;
  /// Whole-run counter deltas (the engine's "run" sample).
  PmuArray pmu_totals{};
  /// Edge work of the whole run, for cycles/edge and misses/edge.
  std::uint64_t pmu_run_edges = 0;
  /// Per-phase aggregates ("edge_pull", "vertex", ...), iteration-summed.
  std::vector<PmuPhaseTotals> pmu_phases;
  /// Host identity the measurements were taken on.
  MachineFingerprint machine = machine_fingerprint();

  [[nodiscard]] std::string to_json() const;
};

/// Derives the per-phase wall-time breakdown from per-iteration stats.
[[nodiscard]] inline PhaseSeconds phase_breakdown(const RunStats& stats) {
  PhaseSeconds p;
  for (const IterationStats& it : stats.per_iteration) {
    if (it.used_pull) {
      p.pull += it.edge_seconds;
    } else if (it.used_sparse_push) {
      p.sparse_push += it.edge_seconds;
    } else {
      p.push += it.edge_seconds;
    }
    p.vertex += it.vertex_seconds;
    p.fold += it.merge_seconds;
    p.idle += it.idle_seconds;
  }
  return p;
}

/// Assembles a report from run stats and an optional telemetry sink.
/// Context fields start empty; drivers fill them before serializing.
[[nodiscard]] inline RunReport build_report(const RunStats& stats,
                                            const Telemetry* telemetry) {
  RunReport r;
  r.stats = stats;
  r.phases = phase_breakdown(stats);
  r.peak_rss_bytes = platform::peak_rss_bytes();
  r.llc_bytes = grazelle::cache_topology().llc_bytes;
  if (telemetry != nullptr) {
    r.counters = telemetry->counters();
    r.telemetry_attached = true;
    if (const Pmu* pmu = telemetry->pmu()) {
      r.pmu_attached = true;
      r.pmu_available = pmu->available();
      r.pmu_unavailable_reason = pmu->unavailable_reason();
      for (const PmuSample& s : telemetry->pmu_samples()) {
        const std::string name = s.name;
        if (name == "run") {
          // The engine wraps every run() in one "run"-named sample;
          // later runs on the same sink overwrite earlier ones, so the
          // report describes the most recent run.
          r.pmu_totals = s.delta;
          r.pmu_run_edges = s.edges;
          continue;
        }
        auto it = std::find_if(
            r.pmu_phases.begin(), r.pmu_phases.end(),
            [&](const PmuPhaseTotals& p) { return p.phase == name; });
        if (it == r.pmu_phases.end()) {
          r.pmu_phases.push_back({name, {}, 0, 0.0});
          it = r.pmu_phases.end() - 1;
        }
        for (unsigned c = 0; c < kNumPmuCounters; ++c) {
          it->counters[c] += s.delta[c];
        }
        it->edges += s.edges;
        it->seconds += static_cast<double>(s.duration_us) * 1e-6;
      }
    }
  }
  return r;
}

inline std::string RunReport::to_json() const {
  json::ObjectWriter phases_w;
  phases_w.field("pull_seconds", phases.pull)
      .field("push_seconds", phases.push)
      .field("sparse_push_seconds", phases.sparse_push)
      .field("vertex_seconds", phases.vertex)
      .field("fold_seconds", phases.fold)
      .field("idle_seconds", phases.idle);

  json::ObjectWriter counters_w;
  for (unsigned c = 0; c < kNumCounters; ++c) {
    counters_w.field(counter_name(static_cast<Counter>(c)), counters[c]);
  }

  json::ObjectWriter machine_w;
  machine_w.field("cpu_model", machine.cpu_model)
      .field("logical_cores", machine.logical_cores)
      .field("avx2", machine.avx2)
      .field("avx512f", machine.avx512f)
      .field("llc_bytes", machine.llc_bytes)
      .field("llc_detected", machine.llc_detected);

  const auto pmu_counters_into = [](json::ObjectWriter& w,
                                    const PmuArray& a) {
    for (unsigned c = 0; c < kNumPmuCounters; ++c) {
      w.field(pmu_counter_name(static_cast<PmuCounter>(c)), a[c]);
    }
  };
  const auto pmu_derived_into = [](json::ObjectWriter& w,
                                   const PmuDerived& d) {
    w.field("ipc", d.ipc)
        .field("cycles_per_edge", d.cycles_per_edge)
        .field("llc_misses_per_edge", d.llc_misses_per_edge)
        .field("effective_bandwidth_gbs", d.effective_bandwidth_gbs);
  };

  json::ObjectWriter pmu_w;
  pmu_w.field("attached", pmu_attached)
      .field("available", pmu_available)
      .field("unavailable_reason", pmu_unavailable_reason);
  pmu_counters_into(pmu_w, pmu_totals);
  pmu_w.field("edges", pmu_run_edges);
  pmu_derived_into(pmu_w,
                   derive_pmu_metrics(pmu_totals, pmu_run_edges,
                                      stats.total_seconds));

  std::vector<std::string> pmu_phase_items;
  pmu_phase_items.reserve(pmu_phases.size());
  for (const PmuPhaseTotals& p : pmu_phases) {
    json::ObjectWriter w;
    w.field("phase", p.phase).field("seconds", p.seconds).field("edges",
                                                                p.edges);
    pmu_counters_into(w, p.counters);
    pmu_derived_into(w, derive_pmu_metrics(p.counters, p.edges, p.seconds));
    pmu_phase_items.push_back(w.str());
  }

  std::vector<std::string> iterations;
  iterations.reserve(stats.per_iteration.size());
  for (std::size_t i = 0; i < stats.per_iteration.size(); ++i) {
    const IterationStats& it = stats.per_iteration[i];
    json::ObjectWriter w;
    w.field("iteration", static_cast<std::uint64_t>(i))
        .field("phase", it.plan.name())
        .field("gated", it.gated)
        .field("frontier_size", it.frontier_size)
        .field("changed", it.changed)
        .field("edge_seconds", it.edge_seconds)
        .field("vertex_seconds", it.vertex_seconds)
        .field("fold_seconds", it.merge_seconds)
        .field("idle_seconds", it.idle_seconds)
        .field("vectors_skipped", it.vectors_skipped)
        .field("blocked", it.blocked)
        .field("blocks_executed", it.blocks_executed);
    iterations.push_back(w.str());
  }

  // Adaptive-mode decision trace (schema v5): what the
  // DirectionController chose each iteration and why, with the cost
  // model's estimate against the feedback measurement. Empty array for
  // fixed-mode runs. Bounded since v6: only the first and last
  // kDirectionTraceKeep adaptive iterations serialize, so a report's
  // size stays constant however long the run converged.
  std::vector<std::size_t> adaptive;  // iteration indices with a reason
  for (std::size_t i = 0; i < stats.per_iteration.size(); ++i) {
    if (stats.per_iteration[i].direction_reason != nullptr) {
      adaptive.push_back(i);
    }
  }
  const bool trace_truncated = adaptive.size() > 2 * kDirectionTraceKeep;
  const std::uint64_t trace_total = adaptive.size();
  std::vector<std::string> trace;
  trace.reserve(std::min(adaptive.size(), 2 * kDirectionTraceKeep));
  const auto trace_entry = [&](std::size_t i) {
    const IterationStats& it = stats.per_iteration[i];
    json::ObjectWriter w;
    w.field("iteration", static_cast<std::uint64_t>(i))
        .field("phase", it.plan.name())
        .field("reason", it.direction_reason)
        .field("estimated_cycles_per_edge", it.estimated_cycles_per_edge)
        .field("measured_cycles_per_edge", it.measured_cycles_per_edge);
    trace.push_back(w.str());
  };
  if (!trace_truncated) {
    for (std::size_t i : adaptive) trace_entry(i);
  } else {
    for (std::size_t k = 0; k < kDirectionTraceKeep; ++k) {
      trace_entry(adaptive[k]);
    }
    for (std::size_t k = adaptive.size() - kDirectionTraceKeep;
         k < adaptive.size(); ++k) {
      trace_entry(adaptive[k]);
    }
  }

  json::ObjectWriter w;
  w.field("schema_version", static_cast<std::uint64_t>(kReportSchemaVersion))
      .field("app", app)
      .field("graph", graph)
      .field("engine", engine)
      .field("pull_mode", pull_mode)
      .field("threads", threads)
      .field("vectorized", vectorized)
      .field("num_vertices", num_vertices)
      .field("num_edges", num_edges)
      .field("graph_build_seconds", graph_build_seconds)
      .field("graph_load_seconds", graph_load_seconds)
      .field("graph_mapped", graph_mapped)
      .field("iterations", stats.iterations)
      .field("pull_iterations", stats.pull_iterations)
      .field("push_iterations", stats.push_iterations)
      .field("sparse_push_iterations", stats.sparse_push_iterations)
      .field("gated_iterations", stats.gated_iterations)
      .field("blocked_iterations", stats.blocked_iterations)
      .field("vectors_skipped", stats.vectors_skipped)
      .field("peak_rss_bytes", peak_rss_bytes)
      .field("llc_bytes", llc_bytes)
      .field("prefetch_distance", prefetch_distance)
      .field("total_seconds", stats.total_seconds)
      .field("telemetry_attached", telemetry_attached)
      .field_raw("machine", machine_w.str())
      .field_raw("pmu", pmu_w.str())
      .field_raw("pmu_phases", json::array(pmu_phase_items))
      .field_raw("phases", phases_w.str())
      .field_raw("counters", counters_w.str())
      .field_raw("per_iteration", json::array(iterations))
      .field_raw("direction_trace", json::array(trace))
      .field("direction_trace_truncated", trace_truncated)
      .field("direction_trace_total", trace_total);
  return w.str();
}

}  // namespace telemetry

// The report types are part of the public stats API; lift them into
// the main namespace alongside RunStats.
using telemetry::RunReport;
using telemetry::build_report;

}  // namespace grazelle
