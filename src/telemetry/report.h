// Run statistics and the structured RunReport.
//
// IterationStats/RunStats are the engine's always-on, lightweight
// accounting (they predate the telemetry layer and remain cheap enough
// to collect unconditionally). RunReport is the machine-readable
// superset: run stats + phase-time breakdown + telemetry counters +
// run context, serialized with stable field names by to_json(). The
// JSON schema is versioned (kReportSchemaVersion); scripts may rely on
// any field present at a given version.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/options.h"
#include "platform/cpu_features.h"
#include "platform/resource.h"
#include "telemetry/json.h"
#include "telemetry/telemetry.h"

namespace grazelle {

struct IterationStats {
  /// The engine's resolved Edge-phase decision for this iteration.
  PhasePlan plan{};
  bool used_pull = false;
  bool used_sparse_push = false;
  double edge_seconds = 0.0;
  double vertex_seconds = 0.0;
  double merge_seconds = 0.0;
  /// Load-imbalance tail wait inside the pull edge phase (threads *
  /// wall - busy); 0 for push iterations.
  double idle_seconds = 0.0;
  std::uint64_t frontier_size = 0;
  std::uint64_t changed = 0;
  /// Whether the frontier-occupancy gate was applied this iteration.
  bool gated = false;
  /// Edge vectors skipped by the occupancy gate (0 when not gated).
  std::uint64_t vectors_skipped = 0;
  /// Whether cache-blocked pull execution was applied this iteration.
  bool blocked = false;
  /// Non-empty (chunk, source-block) segments run (0 when not blocked).
  std::uint64_t blocks_executed = 0;
};

struct RunStats {
  unsigned iterations = 0;
  unsigned pull_iterations = 0;
  unsigned push_iterations = 0;
  unsigned sparse_push_iterations = 0;  // subset of push_iterations
  unsigned gated_iterations = 0;  // subset of pull_iterations
  unsigned blocked_iterations = 0;  // subset of pull_iterations
  std::uint64_t vectors_skipped = 0;  // total across gated iterations
  double total_seconds = 0.0;
  std::vector<IterationStats> per_iteration;
};

namespace telemetry {

// v2: added graph_build_seconds / graph_load_seconds / graph_mapped.
// v3: added blocked / blocks_executed per iteration and
//     blocked_iterations / peak_rss_bytes / llc_bytes /
//     prefetch_distance at top level.
inline constexpr unsigned kReportSchemaVersion = 3;

/// Wall-clock attribution of one run, split by phase. Derived from the
/// per-iteration stats, so it is available with or without a Telemetry
/// sink attached.
struct PhaseSeconds {
  double pull = 0.0;
  double push = 0.0;
  double sparse_push = 0.0;
  double vertex = 0.0;
  double fold = 0.0;   ///< sequential merge-buffer folds
  double idle = 0.0;   ///< pull-phase load-imbalance tail wait

  [[nodiscard]] double edge_total() const noexcept {
    return pull + push + sparse_push;
  }
};

/// Structured result of one engine run: context (filled by the driver),
/// run stats, phase breakdown, and aggregated telemetry counters.
struct RunReport {
  // --- context (optional; set by the driver) ---
  std::string app;
  std::string graph;
  std::string engine;
  std::string pull_mode;
  unsigned threads = 0;
  bool vectorized = false;
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  /// Wall time spent building the data-plane sections (CSR/CSC/VSS/VSD
  /// and metadata). Exactly 0 when the graph was opened zero-copy from
  /// a packed .gzg container — the sections are mapped, not rebuilt.
  double graph_build_seconds = 0.0;
  /// Total input wall time: parse + build, or container open.
  double graph_load_seconds = 0.0;
  /// Whether the graph's arrays are borrowed from a mapped container.
  bool graph_mapped = false;
  /// Process peak resident set at report-build time (getrusage; 0 when
  /// the platform cannot report it).
  std::uint64_t peak_rss_bytes = 0;
  /// Detected last-level cache size of the host (the cache-blocking
  /// budget's baseline).
  std::uint64_t llc_bytes = 0;
  /// Software-prefetch distance the run used (0 = disabled; set by the
  /// driver from the engine).
  unsigned prefetch_distance = 0;

  RunStats stats;
  PhaseSeconds phases;
  /// Aggregated telemetry counters (all zero when no sink was attached).
  CounterArray counters{};
  bool telemetry_attached = false;

  [[nodiscard]] std::string to_json() const;
};

/// Derives the per-phase wall-time breakdown from per-iteration stats.
[[nodiscard]] inline PhaseSeconds phase_breakdown(const RunStats& stats) {
  PhaseSeconds p;
  for (const IterationStats& it : stats.per_iteration) {
    if (it.used_pull) {
      p.pull += it.edge_seconds;
    } else if (it.used_sparse_push) {
      p.sparse_push += it.edge_seconds;
    } else {
      p.push += it.edge_seconds;
    }
    p.vertex += it.vertex_seconds;
    p.fold += it.merge_seconds;
    p.idle += it.idle_seconds;
  }
  return p;
}

/// Assembles a report from run stats and an optional telemetry sink.
/// Context fields start empty; drivers fill them before serializing.
[[nodiscard]] inline RunReport build_report(const RunStats& stats,
                                            const Telemetry* telemetry) {
  RunReport r;
  r.stats = stats;
  r.phases = phase_breakdown(stats);
  r.peak_rss_bytes = platform::peak_rss_bytes();
  r.llc_bytes = grazelle::cache_topology().llc_bytes;
  if (telemetry != nullptr) {
    r.counters = telemetry->counters();
    r.telemetry_attached = true;
  }
  return r;
}

inline std::string RunReport::to_json() const {
  json::ObjectWriter phases_w;
  phases_w.field("pull_seconds", phases.pull)
      .field("push_seconds", phases.push)
      .field("sparse_push_seconds", phases.sparse_push)
      .field("vertex_seconds", phases.vertex)
      .field("fold_seconds", phases.fold)
      .field("idle_seconds", phases.idle);

  json::ObjectWriter counters_w;
  for (unsigned c = 0; c < kNumCounters; ++c) {
    counters_w.field(counter_name(static_cast<Counter>(c)), counters[c]);
  }

  std::vector<std::string> iterations;
  iterations.reserve(stats.per_iteration.size());
  for (std::size_t i = 0; i < stats.per_iteration.size(); ++i) {
    const IterationStats& it = stats.per_iteration[i];
    json::ObjectWriter w;
    w.field("iteration", static_cast<std::uint64_t>(i))
        .field("phase", it.plan.name())
        .field("gated", it.gated)
        .field("frontier_size", it.frontier_size)
        .field("changed", it.changed)
        .field("edge_seconds", it.edge_seconds)
        .field("vertex_seconds", it.vertex_seconds)
        .field("fold_seconds", it.merge_seconds)
        .field("idle_seconds", it.idle_seconds)
        .field("vectors_skipped", it.vectors_skipped)
        .field("blocked", it.blocked)
        .field("blocks_executed", it.blocks_executed);
    iterations.push_back(w.str());
  }

  json::ObjectWriter w;
  w.field("schema_version", static_cast<std::uint64_t>(kReportSchemaVersion))
      .field("app", app)
      .field("graph", graph)
      .field("engine", engine)
      .field("pull_mode", pull_mode)
      .field("threads", threads)
      .field("vectorized", vectorized)
      .field("num_vertices", num_vertices)
      .field("num_edges", num_edges)
      .field("graph_build_seconds", graph_build_seconds)
      .field("graph_load_seconds", graph_load_seconds)
      .field("graph_mapped", graph_mapped)
      .field("iterations", stats.iterations)
      .field("pull_iterations", stats.pull_iterations)
      .field("push_iterations", stats.push_iterations)
      .field("sparse_push_iterations", stats.sparse_push_iterations)
      .field("gated_iterations", stats.gated_iterations)
      .field("blocked_iterations", stats.blocked_iterations)
      .field("vectors_skipped", stats.vectors_skipped)
      .field("peak_rss_bytes", peak_rss_bytes)
      .field("llc_bytes", llc_bytes)
      .field("prefetch_distance", prefetch_distance)
      .field("total_seconds", stats.total_seconds)
      .field("telemetry_attached", telemetry_attached)
      .field_raw("phases", phases_w.str())
      .field_raw("counters", counters_w.str())
      .field_raw("per_iteration", json::array(iterations));
  return w.str();
}

}  // namespace telemetry

// The report types are part of the public stats API; lift them into
// the main namespace alongside RunStats.
using telemetry::RunReport;
using telemetry::build_report;

}  // namespace grazelle
