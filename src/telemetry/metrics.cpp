#include "telemetry/metrics.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "telemetry/json.h"

namespace grazelle::telemetry::metrics {
namespace {

// %.17g round-trips doubles exactly, matching the protocol layer's
// value serialization.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Renders `{op="pr",graph="web"}` (empty string for no labels).
std::string label_block(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) out += ",";
    out += labels[i].first;
    out += "=\"";
    out += prometheus_escape_label(labels[i].second);
    out += "\"";
  }
  out += "}";
  return out;
}

// Same but with an extra `le` label appended for histogram buckets.
std::string label_block_with_le(const Labels& labels,
                                const std::string& le) {
  std::string out = "{";
  for (const auto& [k, v] : labels) {
    out += k;
    out += "=\"";
    out += prometheus_escape_label(v);
    out += "\",";
  }
  out += "le=\"";
  out += le;
  out += "\"}";
  return out;
}

// Escapes a HELP line: only backslash and newline per the format spec.
std::string escape_help(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string prometheus_escape_label(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

Registry::Entry* Registry::find_or_create(
    Kind kind, const std::string& name, const std::string& help,
    Labels labels, double scale) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : entries_) {
    if (e->name == name) {
      if (e->kind != kind) {
        throw std::logic_error("metric '" + name +
                               "' re-registered as a different type");
      }
      if (e->labels == labels) return e.get();
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->kind = kind;
  entry->name = name;
  entry->help = help;
  entry->labels = std::move(labels);
  switch (kind) {
    case Kind::kCounter: entry->counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: entry->gauge = std::make_unique<Gauge>(); break;
    case Kind::kHistogram:
      entry->histogram = std::make_unique<Histogram>(scale);
      break;
  }
  entries_.push_back(std::move(entry));
  return entries_.back().get();
}

Counter* Registry::counter(const std::string& name,
                                  const std::string& help,
                                  Labels labels) {
  return find_or_create(Kind::kCounter, name, help, std::move(labels), 1.0)
      ->counter.get();
}

Gauge* Registry::gauge(const std::string& name, const std::string& help,
                              Labels labels) {
  return find_or_create(Kind::kGauge, name, help, std::move(labels), 1.0)
      ->gauge.get();
}

Histogram* Registry::histogram(const std::string& name,
                                      const std::string& help,
                                      Labels labels,
                                      double exposition_scale) {
  return find_or_create(Kind::kHistogram, name, help, std::move(labels),
                        exposition_scale)
      ->histogram.get();
}

std::size_t Registry::num_instruments() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::string Registry::prometheus_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Same-name series must be contiguous under one HELP/TYPE header, so
  // scrape over a name-grouped view (stable: registration order breaks
  // ties, keeping label order deterministic).
  std::vector<const Entry*> ordered;
  ordered.reserve(entries_.size());
  for (const auto& e : entries_) ordered.push_back(e.get());
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Entry* a, const Entry* b) {
                     return a->name < b->name;
                   });
  std::string out;
  std::string last_name;  // HELP/TYPE emitted once per metric name
  for (const Entry* e : ordered) {
    if (e->name != last_name) {
      last_name = e->name;
      out += "# HELP " + e->name + " " + escape_help(e->help) + "\n";
      out += "# TYPE " + e->name + " ";
      switch (e->kind) {
        case Kind::kCounter: out += "counter\n"; break;
        case Kind::kGauge: out += "gauge\n"; break;
        case Kind::kHistogram: out += "histogram\n"; break;
      }
    }
    const std::string labels = label_block(e->labels);
    switch (e->kind) {
      case Kind::kCounter:
        out += e->name + labels + " " + std::to_string(e->counter->value()) +
               "\n";
        break;
      case Kind::kGauge:
        out += e->name + labels + " " + format_double(e->gauge->value()) + "\n";
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot snap = e->histogram->snapshot();
        const double scale = e->histogram->exposition_scale();
        // Cumulative buckets; empty buckets are skipped, which stays
        // valid because `le` boundaries remain sorted and cumulative.
        std::uint64_t cumulative = 0;
        const unsigned top = snap.significant_buckets();
        for (unsigned b = 0; b < top; ++b) {
          if (snap.counts[b] == 0) continue;
          cumulative += snap.counts[b];
          const double le =
              static_cast<double>(HistogramLayout::upper(b)) * scale;
          out += e->name + "_bucket" +
                 label_block_with_le(e->labels, format_double(le)) + " " +
                 std::to_string(cumulative) + "\n";
        }
        out += e->name + "_bucket" + label_block_with_le(e->labels, "+Inf") +
               " " + std::to_string(snap.count) + "\n";
        out += e->name + "_sum" + labels + " " +
               format_double(static_cast<double>(snap.sum) * scale) + "\n";
        out += e->name + "_count" + labels + " " +
               std::to_string(snap.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string Registry::json() const {
  std::lock_guard<std::mutex> lock(mu_);
  json::ObjectWriter w;
  for (const auto& e : entries_) {
    std::string key = e->name;
    if (!e->labels.empty()) {
      key += "{";
      for (std::size_t i = 0; i < e->labels.size(); ++i) {
        if (i != 0) key += ",";
        key += e->labels[i].first + "=" + e->labels[i].second;
      }
      key += "}";
    }
    switch (e->kind) {
      case Kind::kCounter: w.field(key, e->counter->value()); break;
      case Kind::kGauge: w.field(key, e->gauge->value()); break;
      case Kind::kHistogram: {
        const HistogramSnapshot snap = e->histogram->snapshot();
        const double scale = e->histogram->exposition_scale();
        json::ObjectWriter h;
        h.field("count", snap.count);
        h.field("sum", static_cast<double>(snap.sum) * scale);
        h.field("mean", snap.mean() * scale);
        h.field("p50", static_cast<double>(snap.quantile(0.50)) * scale);
        h.field("p95", static_cast<double>(snap.quantile(0.95)) * scale);
        h.field("p99", static_cast<double>(snap.quantile(0.99)) * scale);
        h.field("p999", static_cast<double>(snap.quantile(0.999)) * scale);
        w.field_raw(key, h.str());
        break;
      }
    }
  }
  return w.str();
}

}  // namespace grazelle::telemetry::metrics
