// chrome://tracing export of the per-thread telemetry event buffers.
//
// Emits the Trace Event Format's JSON-object flavor: a "traceEvents"
// array of complete ("ph":"X") duration events plus thread_name
// metadata, timestamps in microseconds since the Telemetry epoch.
// When a PMU was attached, each recorded phase sample additionally
// becomes a counter ("ph":"C") event carrying the running hardware
// totals — chrome://tracing plots them as per-counter time series
// above the span rows. Load the file at chrome://tracing (or
// https://ui.perfetto.dev) to see per-thread phase/chunk timelines —
// scheduler imbalance shows up directly as ragged chunk rows.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

#include "telemetry/json.h"
#include "telemetry/telemetry.h"

namespace grazelle::telemetry {

/// Serializes every recorded event as a chrome trace document.
[[nodiscard]] inline std::string chrome_trace_json(const Telemetry& t) {
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  const auto append = [&](const std::string& obj) {
    if (!first) out += ",\n";
    first = false;
    out += obj;
  };

  for (unsigned tid = 0; tid < t.num_threads(); ++tid) {
    json::ObjectWriter meta;
    meta.field("name", "thread_name")
        .field("ph", "M")
        .field("pid", std::uint64_t{0})
        .field("tid", static_cast<std::uint64_t>(tid))
        .field_raw("args",
                   json::ObjectWriter()
                       .field("name", tid == 0 ? std::string("main")
                                               : "worker-" +
                                                     std::to_string(tid))
                       .str());
    append(meta.str());
  }

  for (unsigned tid = 0; tid < t.num_threads(); ++tid) {
    for (const TraceEvent& e : t.events(tid)) {
      json::ObjectWriter w;
      w.field("name", e.name)
          .field("cat", "grazelle")
          .field("ph", "X")
          .field("ts", e.start_us)
          .field("dur", e.duration_us)
          .field("pid", std::uint64_t{0})
          .field("tid", static_cast<std::uint64_t>(e.tid));
      if (e.arg_name != nullptr) {
        w.field_raw("args",
                    json::ObjectWriter().field(e.arg_name, e.arg).str());
      }
      append(w.str());
    }
  }

  // PMU counter events: one "C" event per phase sample, carrying the
  // running totals at the sample's end. The engine records samples
  // sequentially, so end timestamps are monotone and the counter track
  // renders as a proper staircase. The whole-run bracket sample is
  // skipped — its end coincides with the last phase's and it would
  // double-count every delta.
  PmuArray running{};
  for (const PmuSample& s : t.pmu_samples()) {
    if (std::string_view(s.name) == "run") continue;
    json::ObjectWriter args;
    for (unsigned c = 0; c < kNumPmuCounters; ++c) {
      running[c] += s.delta[c];
      args.field(pmu_counter_name(static_cast<PmuCounter>(c)), running[c]);
    }
    json::ObjectWriter w;
    w.field("name", "pmu")
        .field("cat", "grazelle")
        .field("ph", "C")
        .field("ts", s.start_us + s.duration_us)
        .field("pid", std::uint64_t{0})
        .field_raw("args", args.str());
    append(w.str());
  }

  out += "],\n\"displayTimeUnit\": \"ms\"}";
  return out;
}

/// Writes the chrome trace to `path`; false (with errno intact) when
/// the file cannot be written.
inline bool write_chrome_trace(const Telemetry& t, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = chrome_trace_json(t);
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace grazelle::telemetry
