// Always-on flight recorder (DESIGN.md §16): a fixed-size lock-free
// ring of the most recent request / phase / tuner events, cheap enough
// to leave running in production and dumped as chrome-trace JSON when
// something goes wrong (SIGUSR1, unclean shutdown, or the `dump`
// protocol op).
//
// Concurrency: writers claim a monotonically increasing ticket with
// one fetch_add and own slot `ticket % capacity`. Every slot field is
// a std::atomic, written with a per-slot seqlock discipline:
//
//   writer: seq <- 0 (release)        // mark busy
//           fields <- ... (relaxed)
//           seq <- ticket + 1 (release)  // publish, never 0
//   reader: s1 = seq (acquire); if s1 == 0 skip
//           fields -> ... (relaxed)
//           s2 = seq (acquire); accept iff s1 == s2
//
// A reader that races a wrapping writer observes s1 != s2 and drops
// the slot — the event was being overwritten anyway. Because every
// access is atomic, the protocol is race-free by construction (clean
// under TSan), not merely benign.
//
// Strings are interned `const char*` literals with static storage
// duration (event kinds, op names, outcomes) — recording never
// allocates. The free-form id is captured into a fixed per-slot
// atomic<char> array, truncating long ids.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace grazelle::telemetry {

/// Decoded ring entry, oldest-first in FlightRecorder::snapshot().
struct FlightEvent {
  std::uint64_t ticket = 0;     // global sequence number of the event
  const char* kind = "";        // category: "request" | "phase" | "tuner" | ...
  const char* name = "";        // event name (op or phase literal)
  std::string id;               // free-form correlation id (request id)
  std::uint64_t ts_us = 0;      // start, microseconds since recorder start
  std::uint64_t dur_us = 0;     // duration, microseconds (0 = instant)
  const char* detail = "";      // outcome / annotation literal
  std::uint32_t tid = 0;        // recording thread ordinal
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;
  static constexpr std::size_t kIdBytes = 24;

  /// Capacity is rounded up to a power of two (minimum 2).
  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Microseconds since this recorder was constructed — the timebase
  /// for every ts_us passed to record().
  [[nodiscard]] std::uint64_t now_us() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Records one event. `kind`, `name`, and `detail` MUST be string
  /// literals (or otherwise outlive the recorder); `id` is copied
  /// (truncated to kIdBytes). Wait-free; never allocates.
  void record(const char* kind, const char* name, std::string_view id,
              std::uint64_t ts_us, std::uint64_t dur_us,
              const char* detail = "") noexcept;

  /// Decodes the ring, oldest event first. Slots mid-overwrite are
  /// skipped. Safe to call concurrently with record().
  [[nodiscard]] std::vector<FlightEvent> snapshot() const;

  /// Chrome-trace JSON ("traceEvents" of ph:"X" complete events, one
  /// row per recording thread) of the current ring contents. Loadable
  /// in chrome://tracing and Perfetto.
  [[nodiscard]] std::string chrome_trace_json() const;

  /// Writes chrome_trace_json() to `path`. Returns false on I/O error.
  bool dump(const std::string& path) const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Total events ever recorded (>= capacity means the ring wrapped).
  [[nodiscard]] std::uint64_t total_recorded() const noexcept {
    return next_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  // 0 = empty/busy, else ticket+1
    std::atomic<const char*> kind{""};
    std::atomic<const char*> name{""};
    std::atomic<const char*> detail{""};
    std::atomic<std::uint64_t> ts_us{0};
    std::atomic<std::uint64_t> dur_us{0};
    std::atomic<std::uint32_t> tid{0};
    std::atomic<std::uint8_t> id_len{0};
    std::array<std::atomic<char>, kIdBytes> id{};
  };

  std::size_t capacity_;  // power of two
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> next_{0};
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace grazelle::telemetry
