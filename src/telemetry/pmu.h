// Hardware PMU counter groups over perf_event_open(2) (DESIGN.md §11).
//
// The paper argues its Vector-Sparse and scheduler-awareness wins from
// hardware evidence — instruction counts, cache behaviour, memory
// bandwidth (Figs. 9-10). This layer makes those measurements
// first-class: one counter group (cycles, instructions, LLC
// loads/misses, branch misses, stalled cycles) per monitored thread,
// read as scaled totals and recorded as per-phase deltas by the
// telemetry spans.
//
// Degradation contract: opening counters is best-effort and NEVER
// fails a run. When the kernel denies perf_event_open (seccomp,
// perf_event_paranoid, no PMU in the VM) the object reports
// available() == false and read() falls back to an rdtsc-based cycle
// estimate (elapsed reference cycles of the reading thread; all other
// counters stay 0). Consumers see pmu_available=false in RunReport and
// must treat derived metrics as estimates in that mode.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include <sys/types.h>

namespace grazelle::telemetry {

/// The fixed hardware-counter set one group carries. Names
/// (pmu_counter_name) are stable: they are RunReport JSON keys.
enum class PmuCounter : unsigned {
  kCycles,         ///< PERF_COUNT_HW_CPU_CYCLES (group leader)
  kInstructions,   ///< PERF_COUNT_HW_INSTRUCTIONS
  kLlcLoads,       ///< HW_CACHE_LL read accesses
  kLlcMisses,      ///< HW_CACHE_LL read misses
  kBranchMisses,   ///< PERF_COUNT_HW_BRANCH_MISSES
  kStalledCycles,  ///< PERF_COUNT_HW_STALLED_CYCLES_BACKEND
  kCount,
};

inline constexpr unsigned kNumPmuCounters =
    static_cast<unsigned>(PmuCounter::kCount);

/// Stable JSON field name for a PMU counter.
[[nodiscard]] constexpr const char* pmu_counter_name(PmuCounter c) noexcept {
  switch (c) {
    case PmuCounter::kCycles: return "cycles";
    case PmuCounter::kInstructions: return "instructions";
    case PmuCounter::kLlcLoads: return "llc_loads";
    case PmuCounter::kLlcMisses: return "llc_misses";
    case PmuCounter::kBranchMisses: return "branch_misses";
    case PmuCounter::kStalledCycles: return "stalled_cycles";
    case PmuCounter::kCount: break;
  }
  return "unknown";
}

/// Aggregated PMU readings, indexable by PmuCounter.
using PmuArray = std::array<std::uint64_t, kNumPmuCounters>;

/// One perf counter group per monitored thread, summed on read.
///
/// The constructor opens a group for the calling thread; worker
/// threads are added with attach_thread(tid) (perf_event_open accepts
/// another thread's tid, so attachment happens from the driver thread
/// after the pool exists). The group leader is the cycles counter;
/// sibling counters that the host cannot provide (e.g. stalled cycles
/// on some cores) are skipped individually and read as 0 — only a
/// leader failure degrades the whole object.
///
/// Counter multiplexing is handled: readings are scaled by
/// time_enabled/time_running per group, so totals stay meaningful even
/// when the kernel rotates more groups than the PMU has slots.
///
/// Setting the GRAZELLE_PMU_DISABLE environment variable to a nonzero
/// value forces the degraded path (deterministic CI / tests).
class Pmu {
 public:
  Pmu();
  ~Pmu();

  Pmu(const Pmu&) = delete;
  Pmu& operator=(const Pmu&) = delete;

  /// Opens a counter group for another thread (by OS tid). Returns
  /// false — without side effects — when the PMU is degraded or the
  /// kernel refuses.
  bool attach_thread(pid_t tid);

  /// True when hardware counters are live; false in rdtsc-fallback
  /// mode.
  [[nodiscard]] bool available() const noexcept { return available_; }

  /// Human-readable reason for degradation; empty when available().
  [[nodiscard]] const std::string& unavailable_reason() const noexcept {
    return reason_;
  }

  /// Number of threads with an open counter group (0 when degraded).
  [[nodiscard]] unsigned num_groups() const noexcept {
    return static_cast<unsigned>(groups_.size());
  }

  /// Current totals summed across all attached threads,
  /// multiplexing-scaled. Monotonic; callers diff successive reads for
  /// span deltas. Degraded mode: kCycles = elapsed reference cycles
  /// (rdtsc) since construction, everything else 0.
  [[nodiscard]] PmuArray read() const;

 private:
  struct Group {
    int leader_fd = -1;
    /// perf sample IDs by counter slot; id 0 = counter not open.
    std::array<std::uint64_t, kNumPmuCounters> ids{};
    /// All open fds of the group (leader first), for closing.
    std::vector<int> fds;
  };

  bool open_group(pid_t tid, std::string* error);

  std::vector<Group> groups_;
  bool available_ = false;
  std::string reason_;
  std::uint64_t tsc_origin_ = 0;
};

/// Elapsed-reference-cycle source for the degraded path: rdtsc on x86,
/// a steady-clock nanosecond count elsewhere (≈ cycles at 1 GHz).
[[nodiscard]] std::uint64_t read_tsc() noexcept;

}  // namespace grazelle::telemetry
