#include "telemetry/flight_recorder.h"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "telemetry/histogram.h"
#include "telemetry/json.h"

namespace grazelle::telemetry {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(std::bit_ceil(std::max<std::size_t>(capacity, 2))),
      slots_(new Slot[capacity_]),
      epoch_(std::chrono::steady_clock::now()) {}

void FlightRecorder::record(const char* kind, const char* name,
                            std::string_view id, std::uint64_t ts_us,
                            std::uint64_t dur_us,
                            const char* detail) noexcept {
  const std::uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[ticket & (capacity_ - 1)];
  s.seq.store(0, std::memory_order_release);  // mark busy
  s.kind.store(kind, std::memory_order_relaxed);
  s.name.store(name, std::memory_order_relaxed);
  s.detail.store(detail, std::memory_order_relaxed);
  s.ts_us.store(ts_us, std::memory_order_relaxed);
  s.dur_us.store(dur_us, std::memory_order_relaxed);
  s.tid.store(thread_ordinal(), std::memory_order_relaxed);
  const std::uint8_t len =
      static_cast<std::uint8_t>(std::min(id.size(), kIdBytes));
  s.id_len.store(len, std::memory_order_relaxed);
  for (std::uint8_t i = 0; i < len; ++i) {
    s.id[i].store(id[i], std::memory_order_relaxed);
  }
  s.seq.store(ticket + 1, std::memory_order_release);  // publish
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> out;
  out.reserve(capacity_);
  for (std::size_t i = 0; i < capacity_; ++i) {
    const Slot& s = slots_[i];
    const std::uint64_t s1 = s.seq.load(std::memory_order_acquire);
    if (s1 == 0) continue;  // never written, or mid-overwrite
    FlightEvent e;
    e.ticket = s1 - 1;
    e.kind = s.kind.load(std::memory_order_relaxed);
    e.name = s.name.load(std::memory_order_relaxed);
    e.ts_us = s.ts_us.load(std::memory_order_relaxed);
    e.dur_us = s.dur_us.load(std::memory_order_relaxed);
    e.detail = s.detail.load(std::memory_order_relaxed);
    e.tid = s.tid.load(std::memory_order_relaxed);
    const std::uint8_t len = s.id_len.load(std::memory_order_relaxed);
    e.id.resize(std::min<std::size_t>(len, kIdBytes));
    for (std::size_t c = 0; c < e.id.size(); ++c) {
      e.id[c] = s.id[c].load(std::memory_order_relaxed);
    }
    const std::uint64_t s2 = s.seq.load(std::memory_order_acquire);
    if (s1 != s2) continue;  // torn by a wrapping writer — drop
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.ticket < b.ticket;
            });
  return out;
}

std::string FlightRecorder::chrome_trace_json() const {
  const std::vector<FlightEvent> events = snapshot();
  std::vector<std::string> items;
  items.reserve(events.size());
  for (const FlightEvent& e : events) {
    json::ObjectWriter w;
    w.field("name", e.name);
    w.field("cat", e.kind);
    w.field("ph", "X");
    w.field("ts", e.ts_us);
    w.field("dur", e.dur_us);
    w.field("pid", std::uint64_t{1});
    w.field("tid", std::uint64_t{e.tid});
    json::ObjectWriter args;
    args.field("seq", e.ticket);
    if (!e.id.empty()) args.field("id", e.id);
    if (e.detail[0] != '\0') args.field("detail", e.detail);
    w.field_raw("args", args.str());
    items.push_back(w.str());
  }
  json::ObjectWriter top;
  top.field_raw("traceEvents", json::array(items));
  top.field("displayTimeUnit", "ms");
  top.field("recorded_total", total_recorded());
  top.field("ring_capacity", std::uint64_t{capacity_});
  return top.str();
}

bool FlightRecorder::dump(const std::string& path) const {
  const std::string text = chrome_trace_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t wrote = std::fwrite(text.data(), 1, text.size(), f);
  const bool ok = wrote == text.size() && std::fclose(f) == 0;
  if (wrote != text.size()) std::fclose(f);
  return ok;
}

}  // namespace grazelle::telemetry
