// Padded per-thread reduction slots — Grazelle's "global variables"
// (§5): values produced during one phase and consumed after its
// barrier, without false sharing in between.
#pragma once

#include <cstddef>

#include "platform/aligned_buffer.h"
#include "platform/types.h"

namespace grazelle {

/// One cache-line-padded slot of T per thread; combine() folds them.
template <typename T>
class ReductionArray {
  struct alignas(kCacheLineBytes) Slot {
    T value;
  };

 public:
  explicit ReductionArray(unsigned num_threads, T initial = T{})
      : slots_(num_threads) {
    reset(initial);
  }

  void reset(T initial = T{}) {
    for (auto& s : slots_) s.value = initial;
  }

  [[nodiscard]] T& local(unsigned tid) noexcept { return slots_[tid].value; }

  /// Folds all slots with `op` starting from `init`. Call after the
  /// producing phase's barrier.
  template <typename Op>
  [[nodiscard]] T combine(T init, Op op) const {
    T acc = init;
    for (const auto& s : slots_) acc = op(acc, s.value);
    return acc;
  }

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(slots_.size());
  }

 private:
  AlignedBuffer<Slot> slots_;
};

}  // namespace grazelle
