#include "threading/thread_pool.h"

#include <pthread.h>
#include <sched.h>
#include <unistd.h>

#include <algorithm>

namespace grazelle {
namespace {

void try_pin_to_cpu(std::thread& thread, unsigned cpu) {
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % std::max(1u, std::thread::hardware_concurrency()), &set);
  // Best-effort only; pinning is an optimization, never a correctness
  // requirement.
  (void)pthread_setaffinity_np(thread.native_handle(), sizeof(set), &set);
}

}  // namespace

ThreadPool::ThreadPool(unsigned num_threads, bool pin_threads)
    : phase_barrier_(std::max(1u, num_threads)) {
  const unsigned workers = std::max(1u, num_threads) - 1;
  workers_.reserve(workers);
  worker_tids_.resize(workers, 0);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this, tid = i + 1] { worker_loop(tid); });
    if (pin_threads) try_pin_to_cpu(workers_.back(), i + 1);
  }
}

std::vector<pid_t> ThreadPool::worker_os_tids() const {
  // Spin-wait (bounded by worker startup, microseconds) until every
  // worker has published; release/acquire on the counter orders the
  // tid writes.
  while (tids_published_.load(std::memory_order_acquire) <
         worker_tids_.size()) {
    std::this_thread::yield();
  }
  return worker_tids_;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run(const std::function<void(unsigned)>& task) {
  telemetry::count(telemetry_, 0, telemetry::Counter::kPoolTasks, 1);
  {
    std::lock_guard lock(mutex_);
    task_ = &task;
    active_ = static_cast<unsigned>(workers_.size());
    ++generation_;
  }
  work_cv_.notify_all();

  task(0);  // caller participates as thread 0

  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [&] { return active_ == 0; });
  task_ = nullptr;
}

void ThreadPool::worker_loop(unsigned tid) {
  worker_tids_[tid - 1] = gettid();
  tids_published_.fetch_add(1, std::memory_order_release);
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(unsigned)>* task = nullptr;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      task = task_;
    }
    (*task)(tid);
    {
      std::lock_guard lock(mutex_);
      if (--active_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace grazelle
