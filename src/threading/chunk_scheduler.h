// Chunked iteration-space schedulers.
//
// The paper's key structural observation (§3): schedulers hand out
// *chunks* of consecutive iterations, and the chunking of the iteration
// space can be static (fixed chunk boundaries, so merge buffers can be
// preallocated, one slot per chunk) while the *assignment* of chunks to
// threads stays dynamic. Grazelle's Edge phase uses a dynamic scheduler
// with 32·n equal chunks by default (§5).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>

#include "platform/bits.h"

namespace grazelle {

/// One scheduler chunk: iterations [begin, end), with a stable id equal
/// to begin / chunk_size. Ids index the merge buffer.
struct Chunk {
  std::uint64_t id = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  [[nodiscard]] std::uint64_t size() const noexcept { return end - begin; }
  friend bool operator==(const Chunk&, const Chunk&) = default;
};

/// Statically chunks [0, total) into fixed-size pieces and dynamically
/// hands them to whichever thread asks next (atomic ticket counter).
/// reset() rearms it for the next phase without reallocation.
class DynamicChunkScheduler {
 public:
  DynamicChunkScheduler(std::uint64_t total, std::uint64_t chunk_size)
      : total_(total),
        chunk_size_(chunk_size == 0 ? 1 : chunk_size),
        num_chunks_(total == 0 ? 0 : bits::ceil_div(total, chunk_size_)) {}

  /// Convenience: the paper's default granularity of `chunks_per_thread`
  /// (32) chunks per thread.
  [[nodiscard]] static DynamicChunkScheduler with_chunk_count(
      std::uint64_t total, std::uint64_t desired_chunks) {
    const std::uint64_t chunks = desired_chunks == 0 ? 1 : desired_chunks;
    return DynamicChunkScheduler(
        total, total == 0 ? 1 : bits::ceil_div(total, chunks));
  }

  /// Claims the next unassigned chunk, or nullopt when exhausted.
  /// Thread-safe.
  [[nodiscard]] std::optional<Chunk> next() noexcept {
    const std::uint64_t id = next_.fetch_add(1, std::memory_order_relaxed);
    if (id >= num_chunks_) return std::nullopt;
    const std::uint64_t begin = id * chunk_size_;
    const std::uint64_t end = std::min(begin + chunk_size_, total_);
    return Chunk{id, begin, end};
  }

  /// Rearms for another full pass over the iteration space.
  void reset() noexcept { next_.store(0, std::memory_order_relaxed); }

  /// Chunks handed out since construction or the last reset() —
  /// telemetry reads this after the loop (kChunksExecuted).
  [[nodiscard]] std::uint64_t chunks_claimed() const noexcept {
    return std::min(next_.load(std::memory_order_relaxed), num_chunks_);
  }

  [[nodiscard]] std::uint64_t num_chunks() const noexcept {
    return num_chunks_;
  }
  [[nodiscard]] std::uint64_t chunk_size() const noexcept {
    return chunk_size_;
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

 private:
  std::uint64_t total_;
  std::uint64_t chunk_size_;
  std::uint64_t num_chunks_;
  std::atomic<std::uint64_t> next_{0};
};

/// Static assignment: thread t owns every chunk with id % threads == t.
/// Used by the ablation bench comparing scheduling policies and by the
/// Vertex phase (one contiguous chunk per thread).
class StaticChunkScheduler {
 public:
  StaticChunkScheduler(std::uint64_t total, std::uint64_t chunk_size,
                       unsigned num_threads)
      : inner_(total, chunk_size), num_threads_(num_threads) {}

  /// Chunk `k`-th chunk owned by `thread`, or nullopt past the end.
  [[nodiscard]] std::optional<Chunk> chunk_for(unsigned thread,
                                               std::uint64_t k) const noexcept {
    const std::uint64_t id = k * num_threads_ + thread;
    if (id >= inner_.num_chunks()) return std::nullopt;
    const std::uint64_t begin = id * inner_.chunk_size();
    const std::uint64_t end =
        std::min(begin + inner_.chunk_size(), inner_.total());
    return Chunk{id, begin, end};
  }

  [[nodiscard]] std::uint64_t num_chunks() const noexcept {
    return inner_.num_chunks();
  }

 private:
  DynamicChunkScheduler inner_;
  unsigned num_threads_;
};

}  // namespace grazelle
