// Generation-counting barrier used between engine phases.
//
// Deliberately blocking (condition variable) rather than spinning: the
// reproduction host may oversubscribe cores, and a spin barrier would
// burn whole scheduler quanta per waiter.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace grazelle {

/// Reusable barrier for a fixed number of participants.
class Barrier {
 public:
  explicit Barrier(unsigned num_threads) : expected_(num_threads) {}

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Blocks until all participants have arrived.
  void arrive_and_wait() {
    std::unique_lock lock(mutex_);
    const std::uint64_t my_generation = generation_;
    if (++arrived_ == expected_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return generation_ != my_generation; });
    }
  }

  [[nodiscard]] unsigned participants() const noexcept { return expected_; }

 private:
  const unsigned expected_;
  unsigned arrived_ = 0;
  std::uint64_t generation_ = 0;
  std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace grazelle
