// Lock-free combine helpers used by the traditional (non-scheduler-aware)
// engines: the paper's Listing 1 `atomicCAS(vertex[vDst].value,
// compute(...))` generalized over value type and operator.
#pragma once

#include <atomic>
#include <concepts>
#include <type_traits>

namespace grazelle {

/// Atomically sets `*loc = op(*loc, value)` via a compare-exchange loop.
/// `op` must be commutative and associative for parallel use. Returns
/// true when the stored value changed. By default a no-op update skips
/// the write entirely (minimization operators exploit this); set
/// ForceWrite to always perform the store — the "write-intense"
/// behaviour benchmarked in the paper's Figure 8a.
template <bool ForceWrite = false, typename T, typename Op>
inline bool atomic_combine(T* loc, T value, Op op) {
  std::atomic_ref<T> ref(*loc);
  T observed = ref.load(std::memory_order_relaxed);
  for (;;) {
    const T desired = op(observed, value);
    if constexpr (!ForceWrite) {
      if (desired == observed) return false;  // no-op update, skip it
    }
    if (ref.compare_exchange_weak(observed, desired,
                                  std::memory_order_relaxed)) {
      return true;
    }
  }
}

/// Atomically performs `*loc = min(*loc, value)`; returns true if it
/// lowered the value.
template <typename T>
inline bool atomic_min(T* loc, T value) {
  return atomic_combine(loc, value,
                        [](T a, T b) { return b < a ? b : a; });
}

/// Atomic `*loc += value` for arithmetic types (CAS loop for doubles).
template <typename T>
inline void atomic_add(T* loc, T value) {
  if constexpr (std::integral<T>) {
    std::atomic_ref<T>(*loc).fetch_add(value, std::memory_order_relaxed);
  } else {
    atomic_combine(loc, value, [](T a, T b) { return a + b; });
  }
}

/// One-shot atomic claim: sets `*loc = value` only if `*loc == expected`.
/// This is BFS's "first parent wins" write. Returns true on success.
template <typename T>
inline bool atomic_claim(T* loc, T expected, T value) {
  std::atomic_ref<T> ref(*loc);
  return ref.compare_exchange_strong(expected, value,
                                     std::memory_order_relaxed);
}

/// Relaxed atomic load/store for values shared across phase boundaries.
template <typename T>
inline T atomic_load(const T* loc) {
  return std::atomic_ref<const T>(*loc).load(std::memory_order_relaxed);
}

template <typename T>
inline void atomic_store(T* loc, T value) {
  std::atomic_ref<T>(*loc).store(value, std::memory_order_relaxed);
}

}  // namespace grazelle
