// Persistent worker pool. Grazelle (§5) creates one pinned software
// thread per logical core at startup and reuses them for every phase;
// this pool provides the same lifetime model behind a fork-join `run`.
#pragma once

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include <sys/types.h>

#include "telemetry/telemetry.h"
#include "threading/barrier.h"

namespace grazelle {

/// Fixed-size pool executing fork-join tasks. `run(f)` invokes
/// `f(tid)` on every worker (tid in [0, size())) and returns when all
/// have finished. Workers persist across run() calls.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (>= 1). When `pin_threads` is true,
  /// each worker is pinned round-robin to the available CPUs
  /// (best-effort; ignored on failure).
  explicit ThreadPool(unsigned num_threads, bool pin_threads = false);

  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size()) + 1;  // workers + caller
  }

  /// Runs `task(tid)` on all size() threads — the calling thread
  /// participates as tid 0 — and blocks until every invocation returns.
  /// Not reentrant.
  void run(const std::function<void(unsigned)>& task);

  /// Barrier spanning all size() pool threads, usable from inside a
  /// run() task to separate phases.
  [[nodiscard]] Barrier& phase_barrier() noexcept { return phase_barrier_; }

  /// Attaches (or with nullptr detaches) a telemetry sink. Each run()
  /// then counts one kPoolTasks fork-join dispatch. Not thread-safe
  /// against a concurrent run().
  void set_telemetry(telemetry::Telemetry* t) noexcept { telemetry_ = t; }
  [[nodiscard]] telemetry::Telemetry* telemetry() const noexcept {
    return telemetry_;
  }

  /// OS thread ids of the worker threads (size() - 1 entries; the
  /// caller thread is not listed — it monitors itself). Blocks until
  /// every worker has published its tid, so PMU counter groups can be
  /// attached to live threads right after construction.
  [[nodiscard]] std::vector<pid_t> worker_os_tids() const;

 private:
  void worker_loop(unsigned tid);

  std::vector<std::thread> workers_;
  std::vector<pid_t> worker_tids_;
  std::atomic<unsigned> tids_published_{0};
  Barrier phase_barrier_;
  telemetry::Telemetry* telemetry_ = nullptr;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(unsigned)>* task_ = nullptr;
  std::uint64_t generation_ = 0;
  unsigned active_ = 0;
  bool shutdown_ = false;
};

}  // namespace grazelle
