// Parallel loop constructs: the traditional iteration-index interface
// (what Cilk Plus / OpenMP expose) and the paper's scheduler-aware
// interface (§3, Figure 3).
//
// Traditional: the loop body sees only the iteration index and must
// pessimistically assume every iteration runs on a different thread.
//
// Scheduler-aware: the body additionally sees chunk boundaries
// (StartChunk / FinishChunk with the chunk id), so it can keep running
// state in thread-local storage across the consecutive iterations a
// scheduler actually hands to one thread, and spill per-chunk partials
// into a preallocated merge buffer instead of synchronizing.
#pragma once

#include <concepts>
#include <cstdint>
#include <utility>

#include "telemetry/telemetry.h"
#include "threading/chunk_scheduler.h"
#include "threading/thread_pool.h"
#include "threading/work_stealing.h"

namespace grazelle {

/// Requirements on a scheduler-aware loop body (Figure 3's application
/// side): per-chunk bracketing plus the per-iteration call.
template <typename B>
concept SchedulerAwareBody = requires(B body, const Chunk& chunk,
                                      std::uint64_t i) {
  body.start_chunk(chunk);
  body.iteration(i);
  body.finish_chunk(chunk);
};

/// Traditional parallel_for: `fn(i)` for each i in [0, n), dynamically
/// scheduled in chunks of `grain` iterations. `fn` must be safe to call
/// concurrently from different threads.
template <typename Fn>
  requires std::invocable<Fn&, std::uint64_t>
void parallel_for(ThreadPool& pool, std::uint64_t n, std::uint64_t grain,
                  Fn&& fn) {
  if (n == 0) return;
  DynamicChunkScheduler scheduler(n, grain);
  pool.run([&](unsigned) {
    while (auto chunk = scheduler.next()) {
      for (std::uint64_t i = chunk->begin; i < chunk->end; ++i) fn(i);
    }
  });
}

/// Chunk-granular parallel loop: `fn(tid, chunk)` once per chunk. The
/// building block for engines that manage their own inner loops.
///
/// When a telemetry sink is attached, each chunk becomes one trace span
/// named `label` (one null check + two clock reads per chunk, nothing
/// per iteration); with `t == nullptr` the loop is byte-for-byte the
/// uninstrumented one.
template <typename Fn>
  requires std::invocable<Fn&, unsigned, const Chunk&>
void parallel_for_chunks(ThreadPool& pool, std::uint64_t n,
                         std::uint64_t chunk_size, Fn&& fn,
                         telemetry::Telemetry* t = nullptr,
                         const char* label = "chunk") {
  if (n == 0) return;
  DynamicChunkScheduler scheduler(n, chunk_size);
  pool.run([&](unsigned tid) {
    while (auto chunk = scheduler.next()) {
      telemetry::ScopedSpan span(t, tid, label, "chunk_id", chunk->id);
      fn(tid, *chunk);
    }
  });
  if (t != nullptr) {
    t->count(0, telemetry::Counter::kChunksExecuted,
             scheduler.chunks_claimed());
  }
}

/// Scheduler-aware parallel_for (the paper's first contribution).
///
/// `make_body(tid)` constructs one loop body per participating thread;
/// the body lives in that thread's stack (thread-local state is just
/// its members). For every chunk the runtime assigns to a thread, the
/// protocol is:
///
///   body.start_chunk(chunk);
///   for (i = chunk.begin; i < chunk.end; ++i) body.iteration(i);
///   body.finish_chunk(chunk);
///
/// The iteration space is statically chunked (stable chunk ids), so a
/// merge buffer with `scheduler.num_chunks()` slots can be preallocated
/// by the caller; assignment of chunks to threads remains dynamic.
///
/// Returns the number of chunks executed.
template <typename BodyFactory>
std::uint64_t parallel_for_scheduler_aware(
    ThreadPool& pool, std::uint64_t n, std::uint64_t chunk_size,
    BodyFactory&& make_body, telemetry::Telemetry* t = nullptr,
    const char* label = "chunk") {
  if (n == 0) return 0;
  DynamicChunkScheduler scheduler(n, chunk_size);
  pool.run([&](unsigned tid) {
    auto body = make_body(tid);
    static_assert(SchedulerAwareBody<decltype(body)>);
    while (auto chunk = scheduler.next()) {
      telemetry::ScopedSpan span(t, tid, label, "chunk_id", chunk->id);
      body.start_chunk(*chunk);
      for (std::uint64_t i = chunk->begin; i < chunk->end; ++i) {
        body.iteration(i);
      }
      body.finish_chunk(*chunk);
    }
  });
  if (t != nullptr) {
    t->count(0, telemetry::Counter::kChunksExecuted,
             scheduler.chunks_claimed());
  }
  return scheduler.num_chunks();
}

/// Scheduler-aware parallel_for on the work-stealing scheduler
/// (Cilk-style chunk assignment) instead of the dynamic ticket
/// scheduler. Chunk ids are identical between the two, so the same
/// merge buffer works with either; the ablation bench compares them.
template <typename BodyFactory>
std::uint64_t parallel_for_scheduler_aware_ws(
    ThreadPool& pool, std::uint64_t n, std::uint64_t chunk_size,
    BodyFactory&& make_body, telemetry::Telemetry* t = nullptr,
    const char* label = "chunk") {
  if (n == 0) return 0;
  WorkStealingScheduler scheduler(n, chunk_size, pool.size());
  pool.run([&](unsigned tid) {
    auto body = make_body(tid);
    static_assert(SchedulerAwareBody<decltype(body)>);
    while (auto chunk = scheduler.next(tid)) {
      telemetry::ScopedSpan span(t, tid, label, "chunk_id", chunk->id);
      body.start_chunk(*chunk);
      for (std::uint64_t i = chunk->begin; i < chunk->end; ++i) {
        body.iteration(i);
      }
      body.finish_chunk(*chunk);
    }
  });
  if (t != nullptr) {
    t->count(0, telemetry::Counter::kChunksExecuted, scheduler.num_chunks());
    t->count(0, telemetry::Counter::kChunksStolen, scheduler.steals());
  }
  return scheduler.num_chunks();
}

}  // namespace grazelle
