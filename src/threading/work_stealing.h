// Work-stealing chunk scheduler: a Chase-Lev deque per thread, chunks
// pre-distributed round-robin, idle threads stealing from victims.
// This is the scheduling discipline of Intel Cilk Plus, which the
// paper's Ligra baseline runs on (Figure 1 caption); Grazelle itself
// uses the simpler dynamic ticket scheduler (§5), and the ablation
// bench compares the two. Chunk ids remain stable under stealing, so
// the scheduler-aware merge-buffer protocol composes with this
// scheduler unchanged.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <optional>

#include "platform/aligned_buffer.h"
#include "threading/chunk_scheduler.h"

namespace grazelle {

/// Bounded lock-free work-stealing deque (Chase & Lev, SPAA'05;
/// Lê et al., PPoPP'13 memory-order treatment). Fixed capacity — the
/// chunk count is known up front, so no growth path is needed. The
/// owner pushes/pops at the bottom; thieves take from the top.
class ChaseLevDeque {
 public:
  explicit ChaseLevDeque(std::size_t capacity)
      : buffer_(capacity == 0 ? 1 : capacity) {}

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// Owner-only push. Must not exceed capacity.
  void push_bottom(std::uint64_t value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    buffer_[static_cast<std::size_t>(b) % buffer_.size()] = value;
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  /// Owner-only pop (LIFO end).
  [[nodiscard]] std::optional<std::uint64_t> pop_bottom() {
    std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {
      // Deque was empty; restore.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return std::nullopt;
    }
    const std::uint64_t value =
        buffer_[static_cast<std::size_t>(b) % buffer_.size()];
    if (t != b) return value;  // more than one element left
    // Last element: race against thieves for it.
    std::optional<std::uint64_t> result = value;
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      result = std::nullopt;  // a thief won
    }
    bottom_.store(b + 1, std::memory_order_relaxed);
    return result;
  }

  /// Thief-side steal (FIFO end). Safe from any thread.
  [[nodiscard]] std::optional<std::uint64_t> steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return std::nullopt;
    const std::uint64_t value =
        buffer_[static_cast<std::size_t>(t) % buffer_.size()];
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return std::nullopt;  // lost the race; caller retries elsewhere
    }
    return value;
  }

  [[nodiscard]] bool maybe_empty() const noexcept {
    return top_.load(std::memory_order_relaxed) >=
           bottom_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  AlignedBuffer<std::uint64_t> buffer_;
};

/// Statically chunks [0, total) exactly like DynamicChunkScheduler
/// (same stable chunk ids), but distributes the chunks round-robin to
/// per-thread deques; a thread exhausting its own deque steals.
class WorkStealingScheduler {
 public:
  WorkStealingScheduler(std::uint64_t total, std::uint64_t chunk_size,
                        unsigned num_threads)
      : total_(total),
        chunk_size_(chunk_size == 0 ? 1 : chunk_size),
        num_chunks_(total == 0 ? 0
                               : bits::ceil_div(total, chunk_size_)) {
    const unsigned threads = num_threads == 0 ? 1 : num_threads;
    const std::size_t per_thread =
        static_cast<std::size_t>(bits::ceil_div(
            num_chunks_, static_cast<std::uint64_t>(threads))) +
        1;
    for (unsigned t = 0; t < threads; ++t) {
      deques_.emplace_back(per_thread);
    }
    // Round-robin distribution, pushed in reverse so pop_bottom hands
    // out ascending ids (better locality for the merge protocol).
    for (std::uint64_t id = num_chunks_; id-- > 0;) {
      deques_[id % threads].push_bottom(id);
    }
  }

  /// Claims a chunk for `tid`: own deque first, then steal round-robin.
  [[nodiscard]] std::optional<Chunk> next(unsigned tid) {
    if (auto id = deques_[tid % deques_.size()].pop_bottom()) {
      return make_chunk(*id);
    }
    // Steal: sweep victims starting after self; retry while any deque
    // may still hold work (races can yield transient nullopt).
    for (int attempt = 0; attempt < 3; ++attempt) {
      bool any_nonempty = false;
      for (std::size_t k = 1; k < deques_.size(); ++k) {
        ChaseLevDeque& victim = deques_[(tid + k) % deques_.size()];
        if (victim.maybe_empty()) continue;
        any_nonempty = true;
        if (auto id = victim.steal()) {
          steals_.fetch_add(1, std::memory_order_relaxed);
          return make_chunk(*id);
        }
      }
      if (!any_nonempty) break;
    }
    return std::nullopt;
  }

  /// Successful cross-thread steals so far (telemetry: kChunksStolen).
  [[nodiscard]] std::uint64_t steals() const noexcept {
    return steals_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t num_chunks() const noexcept {
    return num_chunks_;
  }
  [[nodiscard]] std::uint64_t chunk_size() const noexcept {
    return chunk_size_;
  }

 private:
  [[nodiscard]] Chunk make_chunk(std::uint64_t id) const noexcept {
    const std::uint64_t begin = id * chunk_size_;
    return Chunk{id, begin, std::min(begin + chunk_size_, total_)};
  }

  std::uint64_t total_;
  std::uint64_t chunk_size_;
  std::uint64_t num_chunks_;
  std::deque<ChaseLevDeque> deques_;
  std::atomic<std::uint64_t> steals_{0};
};

}  // namespace grazelle
