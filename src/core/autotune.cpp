#include "core/autotune.h"

#include <algorithm>
#include <cstdint>

namespace grazelle {

namespace {

using telemetry::Counter;

constexpr std::uint32_t kGatingDivisorGrid[] = {16, 32, 64, 128};
constexpr std::uint32_t kPrefetchGrid[] = {0, 4, 8, 16};

}  // namespace

DirectionController::DirectionController(const Config& cfg)
    : cfg_(cfg),
      gating_divisor_(cfg.base_gating_divisor),
      prefetch_distance_(-1),
      block_shift_(0) {
  cpe_[static_cast<unsigned>(PlanKind::kPull)] = kSeedPullCpe;
  cpe_[static_cast<unsigned>(PlanKind::kGatedPull)] = kSeedGatedPullCpe;
  cpe_[static_cast<unsigned>(PlanKind::kPush)] = kSeedPushCpe;
  if (cfg.seed.present) {
    // A sidecar-warm start: the model begins where the last run on
    // this machine ended, and the knob winners apply from iteration 1.
    if (cfg.seed.pull_cycles_per_edge > 0.0) {
      cpe_[static_cast<unsigned>(PlanKind::kPull)] =
          cfg.seed.pull_cycles_per_edge;
    }
    if (cfg.seed.gated_pull_cycles_per_edge > 0.0) {
      cpe_[static_cast<unsigned>(PlanKind::kGatedPull)] =
          cfg.seed.gated_pull_cycles_per_edge;
    }
    if (cfg.seed.push_cycles_per_edge > 0.0) {
      cpe_[static_cast<unsigned>(PlanKind::kPush)] =
          cfg.seed.push_cycles_per_edge;
    }
    if (cfg.seed.gating_divisor != 0) {
      gating_divisor_ = cfg.seed.gating_divisor;
    }
    if (cfg.seed.prefetch_distance >= 0) {
      prefetch_distance_ = cfg.seed.prefetch_distance;
    }
    if (cfg.seed.block_shift != 0 && cfg.blocking_available) {
      block_shift_ = cfg.seed.block_shift;
    }
    if (cfg.seed.llc_misses_per_edge > 0.0) {
      llc_misses_per_edge_ = cfg.seed.llc_misses_per_edge;
      llc_samples_ = 1;
    }
  }
  for (unsigned k = 0; k < kNumPlanKinds; ++k) profile_cpe_[k] = cpe_[k];
}

std::uint64_t DirectionController::estimated_edges(
    PlanKind k, std::uint64_t frontier_size,
    std::uint64_t frontier_out_edges) const noexcept {
  switch (k) {
    case PlanKind::kPull:
      // Ungated pull scans every in-edge regardless of the frontier.
      return cfg_.num_edges;
    case PlanKind::kGatedPull: {
      // The occupancy gate skips vectors with no active source; the
      // touched-edge count tracks the frontier's out-edges padded to
      // vector granularity (hence the slop), floored at the frontier
      // itself and capped at the full edge set.
      const double est = static_cast<double>(frontier_out_edges) *
                             kGatedPullSlop +
                         static_cast<double>(frontier_size);
      return std::min<std::uint64_t>(
          cfg_.num_edges,
          std::max<std::uint64_t>(static_cast<std::uint64_t>(est), 1));
    }
    case PlanKind::kPush:
      // Push walks exactly the frontier's out-edges (plus the frontier
      // scan itself).
      return std::max<std::uint64_t>(frontier_out_edges + frontier_size, 1);
  }
  return cfg_.num_edges;
}

DirectionDecision DirectionController::decide(
    std::uint64_t frontier_size, std::uint64_t frontier_out_edges) {
  DirectionDecision d;
  if (!cfg_.uses_frontier) {
    // Frontier-free programs (PR): pull is the only kind that keeps
    // results bitwise-reproducible, and it is also the asymptotically
    // right choice — every vertex is live every iteration.
    d.kind = PlanKind::kPull;
    d.reason = "no_frontier";
    d.estimated_edges = cfg_.num_edges;
    d.estimated_cycles_per_edge = model_cpe(d.kind);
    return d;
  }

  // Before the first vertex phase no out-edge tally exists yet; assume
  // the frontier has average degree rather than zero out-edges — zero
  // would make push look frontier-sized even for a full frontier and
  // send the densest iteration down the scattered-atomics path.
  if (frontier_out_edges == 0 && frontier_size > 0 &&
      cfg_.num_vertices > 0) {
    frontier_out_edges =
        frontier_size *
        std::max<std::uint64_t>(cfg_.num_edges / cfg_.num_vertices, 1);
  }

  const bool seeded = cfg_.seed.present && cfg_.seed.samples > 0;
  // Candidate costs: model cycles/edge × estimated touched edges.
  double best_cost = -1.0;
  PlanKind best = PlanKind::kPull;
  const PlanKind candidates[] = {PlanKind::kPull, PlanKind::kGatedPull,
                                 PlanKind::kPush};
  for (PlanKind k : candidates) {
    if (k == PlanKind::kGatedPull && !cfg_.gating_available) continue;
    const std::uint64_t edges =
        estimated_edges(k, frontier_size, frontier_out_edges);
    const double cost = model_cpe(k) * static_cast<double>(edges);
    if (best_cost < 0.0 || cost < best_cost) {
      best_cost = cost;
      best = k;
    }
  }

  d.kind = best;
  d.reason = total_samples() == 0 ? (seeded ? "seeded" : "cold_start")
                                  : "cost_model";

  // Hysteresis: keep the incumbent unless the challenger is a clear
  // win — near-ties must not flap the direction (and with it the
  // working set) every iteration.
  if (have_previous_ && previous_ != best) {
    const std::uint64_t prev_edges =
        estimated_edges(previous_, frontier_size, frontier_out_edges);
    const double prev_cost =
        model_cpe(previous_) * static_cast<double>(prev_edges);
    if ((previous_ != PlanKind::kGatedPull || cfg_.gating_available) &&
        prev_cost <= best_cost * kHysteresisMargin) {
      d.kind = previous_;
      d.reason = "hysteresis_hold";
    }
  }

  if (have_previous_ && previous_ != d.kind) {
    ++direction_switches_;
    telemetry::count(telemetry_, 0, Counter::kTunerDirectionSwitches);
  }
  previous_ = d.kind;
  have_previous_ = true;

  d.estimated_edges =
      estimated_edges(d.kind, frontier_size, frontier_out_edges);
  d.estimated_cycles_per_edge = model_cpe(d.kind);
  return d;
}

void DirectionController::apply_probe(const Probe& p) noexcept {
  switch (p.knob) {
    case Probe::Knob::kGatingDivisor:
      gating_divisor_ = p.value;
      break;
    case Probe::Knob::kPrefetch:
      prefetch_distance_ = static_cast<std::int32_t>(p.value);
      break;
    case Probe::Knob::kBlockShift:
      block_shift_ = p.value;
      break;
  }
}

void DirectionController::begin_retune(PlanKind kind) {
  probing_ = true;
  probe_kind_ = kind;
  probe_index_ = 0;
  probe_queue_.clear();
  // The incumbent values lead the queue so "no change" is always a
  // candidate and a fruitless probe round restores them by winning.
  if (cfg_.gating_available) {
    probe_queue_.push_back(
        {Probe::Knob::kGatingDivisor, gating_divisor_, -1.0});
    for (std::uint32_t v : kGatingDivisorGrid) {
      if (v != gating_divisor_) {
        probe_queue_.push_back({Probe::Knob::kGatingDivisor, v, -1.0});
      }
    }
  }
  const std::uint32_t cur_pf =
      prefetch_distance_ >= 0
          ? static_cast<std::uint32_t>(prefetch_distance_)
          : static_cast<std::uint32_t>(
                std::max<std::int32_t>(cfg_.base_prefetch_distance, 0));
  probe_queue_.push_back({Probe::Knob::kPrefetch, cur_pf, -1.0});
  for (std::uint32_t v : kPrefetchGrid) {
    if (v != cur_pf) probe_queue_.push_back({Probe::Knob::kPrefetch, v, -1.0});
  }
  if (cfg_.blocking_available && cfg_.base_block_shift > 1) {
    const std::uint32_t cur =
        block_shift_ != 0 ? block_shift_ : cfg_.base_block_shift;
    probe_queue_.push_back({Probe::Knob::kBlockShift, cur, -1.0});
    if (cur > 1) {
      probe_queue_.push_back({Probe::Knob::kBlockShift, cur - 1, -1.0});
    }
    probe_queue_.push_back({Probe::Knob::kBlockShift, cur + 1, -1.0});
  }
  ++drift_retunes_;
  telemetry::count(telemetry_, 0, Counter::kTunerDriftRetunes);
  if (!probe_queue_.empty()) apply_probe(probe_queue_[0]);
}

void DirectionController::finish_retune() {
  // Lock in the best measured candidate per knob. Each candidate is
  // measured on a single iteration, so the comparison is noisy: the
  // incumbent (always first in the queue per knob) only loses to a
  // challenger that beats it by the hysteresis margin. Knobs whose
  // incumbent never got a fair trial — the run converged mid-round —
  // stay untouched.
  constexpr unsigned kKnobs = 3;
  const Probe* incumbent[kKnobs] = {nullptr, nullptr, nullptr};
  const Probe* winner[kKnobs] = {nullptr, nullptr, nullptr};
  for (const Probe& p : probe_queue_) {
    const unsigned k = static_cast<unsigned>(p.knob);
    if (incumbent[k] == nullptr) incumbent[k] = &p;
    if (p.measured_cpe < 0.0) continue;
    const Probe*& w = winner[k];
    if (w == nullptr || p.measured_cpe < w->measured_cpe) w = &p;
  }
  for (unsigned k = 0; k < kKnobs; ++k) {
    const Probe* inc = incumbent[k];
    if (inc == nullptr) continue;
    const Probe* w = winner[k];
    const bool challenger_wins =
        w != nullptr && w != inc && inc->measured_cpe >= 0.0 &&
        w->measured_cpe * kHysteresisMargin < inc->measured_cpe;
    // Either way re-apply: the in-flight probe left the last candidate's
    // value active, so the loser must be rolled back explicitly.
    apply_probe(challenger_wins ? *w : *inc);
  }
  probing_ = false;
  probe_queue_.clear();
  probe_index_ = 0;
  // Re-baseline so the same drift does not immediately re-trigger.
  for (unsigned k = 0; k < kNumPlanKinds; ++k) profile_cpe_[k] = cpe_[k];
}

void DirectionController::observe(const DirectionDecision& d,
                                  std::uint64_t cycles) {
  const unsigned k = static_cast<unsigned>(d.kind);
  double measured =
      static_cast<double>(cycles) /
      static_cast<double>(std::max<std::uint64_t>(d.estimated_edges, 1));
  // Trust region: a tiny phase (a few frontier edges under a whole
  // parallel-for's fixed overhead) measures scheduling cost, not
  // per-edge cost. Clamping against the profile keeps one such sample
  // from pricing a kind out of contention forever.
  // A clipped sample also never *replaces* the baseline — otherwise
  // each replacement re-anchors the trust region and successive junk
  // samples ratchet the model arbitrarily far from reality.
  bool trusted = true;
  if (profile_cpe_[k] > 0.0) {
    const double lo = profile_cpe_[k] / kModelTrustFactor;
    const double hi = profile_cpe_[k] * kModelTrustFactor;
    if (measured < lo || measured > hi) {
      measured = std::clamp(measured, lo, hi);
      trusted = false;
    }
  }
  // Confidence scales with how much of the graph the phase actually
  // covered: a sliver-sized phase contributes a sliver-sized update.
  const double full_weight_edges = std::max(
      1.0, static_cast<double>(cfg_.num_edges) * kFullWeightEdgeFraction);
  const double coverage = std::min(
      1.0, static_cast<double>(std::max<std::uint64_t>(d.estimated_edges, 1)) /
               full_weight_edges);
  if (samples_[k] == 0 && trusted && coverage >= 1.0 &&
      !(cfg_.seed.present && cfg_.seed.samples > 0)) {
    cpe_[k] = measured;
    profile_cpe_[k] = measured;
  } else {
    const double alpha = kEwmaAlpha * coverage;
    cpe_[k] = (1.0 - alpha) * cpe_[k] + alpha * measured;
  }
  ++samples_[k];

  if (probing_) {
    if (d.kind == probe_kind_ && probe_index_ < probe_queue_.size()) {
      Probe& p = probe_queue_[probe_index_];
      p.measured_cpe = measured;
      ++probe_count_;
      telemetry::count(telemetry_, 0, Counter::kTunerProbes);
      if (telemetry_ != nullptr) {
        // Zero-duration trace event: what was probed and what it cost
        // (cycles/edge ×1000 to survive the integer arg).
        telemetry_->record(
            0, "tuner_probe", telemetry_->now_us(), 0, "cpe_milli",
            static_cast<std::uint64_t>(measured * 1000.0));
      }
      ++probe_index_;
      if (probe_index_ >= probe_queue_.size()) {
        finish_retune();
      } else {
        apply_probe(probe_queue_[probe_index_]);
      }
    }
    return;
  }

  // Drift detection against the profile this run started from.
  if (samples_[k] >= kDriftMinSamples && profile_cpe_[k] > 0.0) {
    const double ratio = cpe_[k] / profile_cpe_[k];
    if (ratio > kDriftThreshold || ratio < 1.0 / kDriftThreshold) {
      begin_retune(d.kind);
    }
  }
}

void DirectionController::observe_llc(double llc_misses_per_edge) {
  if (llc_misses_per_edge < 0.0) return;
  if (llc_samples_ == 0) {
    llc_misses_per_edge_ = llc_misses_per_edge;
  } else {
    llc_misses_per_edge_ = (1.0 - kEwmaAlpha) * llc_misses_per_edge_ +
                           kEwmaAlpha * llc_misses_per_edge;
  }
  ++llc_samples_;
}

std::uint64_t DirectionController::total_samples() const noexcept {
  std::uint64_t total = 0;
  for (std::uint64_t s : samples_) total += s;
  return total;
}

TuningSeed DirectionController::learned() const {
  TuningSeed seed;
  seed.present = true;
  seed.gating_divisor = gating_divisor_;
  seed.block_shift =
      block_shift_ != 0 ? block_shift_ : cfg_.base_block_shift;
  seed.prefetch_distance = prefetch_distance_;
  seed.pull_cycles_per_edge = model_cpe(PlanKind::kPull);
  seed.gated_pull_cycles_per_edge = model_cpe(PlanKind::kGatedPull);
  seed.push_cycles_per_edge = model_cpe(PlanKind::kPush);
  seed.llc_misses_per_edge = llc_samples_ > 0 ? llc_misses_per_edge_ : 0.0;
  seed.samples = total_samples() + cfg_.seed.samples;
  return seed;
}

}  // namespace grazelle
