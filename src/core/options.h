// Engine configuration and per-phase planning types.
//
// This header is the engine's *policy surface*: the knobs a driver
// sets before a run (thread count, parallelization mode, direction and
// gating policies) live here, decoupled from the engine template so
// tools, benches, and the telemetry layer can speak about
// configuration without instantiating an engine. Since the adaptive
// autotuner (DESIGN.md §15) these are *starting points*, not final
// decisions: under EngineSelect::kAdaptive the DirectionController
// re-picks the edge-phase direction every iteration from its online
// cost model, and may override the gating divisor, block shift, and
// prefetch distance mid-run when measured cycles/edge drift from the
// stored profile. The fixed modes (kAuto heuristic, kPullOnly,
// kPushOnly) still honor these values verbatim.
//
// The direction/gating knobs are grouped into named policy structs
// (DirectionPolicy, GatingPolicy); address those structs directly.
#pragma once

#include <cstdint>

namespace grazelle {

/// Which Edge-phase implementation the driver may pick.
enum class EngineSelect {
  kAuto,      ///< hybrid: frontier-density heuristic per iteration
  kPullOnly,  ///< always Edge-Pull
  kPushOnly,  ///< always Edge-Push
  /// Closed-loop per-iteration choice: the DirectionController picks
  /// push vs pull (and gated vs ungated pull) from frontier density
  /// and an online cycles/edge cost model refined from PMU or rdtsc
  /// samples at phase boundaries (DESIGN.md §15). Converged results
  /// are bit-identical to every fixed mode for deterministic programs.
  kAdaptive,
};

/// Which packed edge layout the pull walkers run over (DESIGN.md §12).
enum class LanePolicy {
  /// 8-lane fused layout when the graph carries one and the host has
  /// the AVX-512 kernels; 4-lane otherwise.
  kAuto,
  /// Always the 4-lane layout.
  k4,
  /// Force the 8-lane layout when the graph carries one, even when the
  /// engine is scalar or the host lacks AVX-512 — the fused *structure*
  /// is walked with per-half 4-lane (or scalar) kernels. Falls back to
  /// 4-lane only when the graph has no Vsd512 section.
  k8,
};

/// Pull Edge-phase parallelization mode (paper Figures 5-8).
enum class PullParallelism {
  kSequential,
  kVertexParallel,
  kTraditional,
  kTraditionalNoAtomic,
  kSchedulerAware,
};

/// Hybrid direction heuristic: when to pull vs push, and when a push
/// iteration may use the explicit sparse-frontier list.
struct DirectionPolicy {
  EngineSelect select = EngineSelect::kAuto;
  /// Beamer-style threshold divisor: pull once the frontier's active
  /// out-edges exceed num_edges / pull_divisor.
  std::uint64_t pull_divisor = 20;
  /// Divisor used instead of pull_divisor when frontier gating is on
  /// (gating makes sparse pull cheap, so the pull band widens).
  std::uint64_t gated_pull_divisor = 200;
  /// Extension beyond the paper (its §5 leaves frontier-representation
  /// switching to future work): when the frontier is very sparse, push
  /// from an explicit active-vertex list instead of scanning the
  /// bitmask.
  bool sparse_push = false;
  /// Frontier-size threshold (fraction of vertices, denominator) below
  /// which sparse push triggers: |F| < V / sparse_push_divisor.
  std::uint64_t sparse_push_divisor = 64;
};

/// Frontier-gated pull (extension, DESIGN.md §6): skip provably
/// inactive edge vectors wholesale on sparse frontiers.
struct GatingPolicy {
  /// Master switch; a no-op for programs with kUsesFrontier == false.
  bool enabled = false;
  /// Frontier-density threshold (denominator) below which the gate is
  /// applied: |F| * density_divisor <= V. On denser frontiers nearly
  /// every span is occupied, so the gate would be pure overhead.
  std::uint64_t density_divisor = 32;
};

/// Cache-blocked pull execution (DESIGN.md §10): run each scheduler
/// chunk block-major over LLC-sized source ranges so the random source
/// gathers stay within a resident working set.
struct BlockingPolicy {
  /// Master switch. Off by default: blocking only pays once the source
  /// value array spills the LLC.
  bool enabled = false;
  /// Fraction of the detected LLC the per-block source working set may
  /// occupy (values outside (0, 1] fall back to 0.5). Ignored when
  /// block_bytes != 0.
  double llc_fraction = 0.5;
  /// Explicit per-block source-value budget in bytes; 0 = derive from
  /// llc_fraction and the detected LLC size.
  std::uint64_t block_bytes = 0;
};

/// Distance-ahead software prefetch in the pull walkers (DESIGN.md
/// §10).
struct PrefetchPolicy {
  /// Master switch. On by default: a pure hint, bit-identical results.
  bool enabled = true;
  /// Prefetch distance in edge vectors; 0 = auto-probe a default at
  /// first use (platform::default_prefetch_distance()).
  unsigned distance = 0;
};

/// A persisted (or hand-fed) autotuning seed for one algorithm on one
/// machine — the engine-facing mirror of store::TuningRecord, kept
/// graph-layer-free so this header stays dependency-light. When
/// `present`, the DirectionController starts from these knob values
/// and cost-model estimates instead of the heuristic constants, which
/// is what lets a sidecar-warm serve hit steady-state cycles/edge in
/// its first iteration.
struct TuningSeed {
  bool present = false;
  std::uint32_t gating_divisor = 0;     ///< 0 = keep GatingPolicy's value
  std::uint32_t block_shift = 0;        ///< 0 = keep the packed index shift
  std::int32_t prefetch_distance = -1;  ///< -1 = untuned; 0 = prefetch off
  double pull_cycles_per_edge = 0.0;    ///< 0 = seed from heuristics
  double gated_pull_cycles_per_edge = 0.0;
  double push_cycles_per_edge = 0.0;
  double llc_misses_per_edge = 0.0;
  std::uint64_t samples = 0;
};

struct EngineOptions {
  unsigned num_threads = 1;
  /// Simulated NUMA nodes the threads divide into (see DESIGN.md §2).
  unsigned numa_nodes = 1;
  /// Edge vectors per scheduler chunk; 0 = Grazelle's default of
  /// 32 * num_threads equal chunks (§5).
  std::uint64_t chunk_vectors = 0;
  PullParallelism pull_mode = PullParallelism::kSchedulerAware;
  /// Packed-layout choice for the pull walkers (4-lane vs fused
  /// 8-lane; DESIGN.md §12).
  LanePolicy lanes = LanePolicy::kAuto;
  /// Pull-vs-push direction choice and sparse-push policy.
  DirectionPolicy direction{};
  /// Frontier-gated pull policy.
  GatingPolicy gating{};
  /// Cache-blocked pull policy.
  BlockingPolicy blocking{};
  /// Software-prefetch policy (applies to all pull walkers).
  PrefetchPolicy prefetch{};
  /// Autotuning seed for EngineSelect::kAdaptive (ignored by the fixed
  /// modes). Typically filled from a .gzg tuning sidecar via
  /// GraphContext::tuning_for().
  TuningSeed tuning{};
};

/// Edge-phase direction for one iteration.
enum class EdgeDirection : std::uint8_t { kPull, kPush };

/// The engine's fully-resolved Edge-phase decision for one iteration:
/// direction plus the per-direction execution variant. A plan is a
/// *value* — the telemetry layer records it, benches construct it
/// explicitly to pin a configuration, and Engine::plan_edge_phase()
/// derives it from the frontier state and the policies above.
struct PhasePlan {
  EdgeDirection direction = EdgeDirection::kPull;
  /// Pull only: apply the frontier-occupancy gate.
  bool gated = false;
  /// Push only: push from an explicit active-vertex list.
  bool sparse = false;
  /// Pull only: run cache-blocked over the source-range block index.
  bool blocked = false;

  [[nodiscard]] static constexpr PhasePlan pull(bool gated = false,
                                                bool blocked = false) {
    return PhasePlan{EdgeDirection::kPull, gated, false, blocked};
  }
  [[nodiscard]] static constexpr PhasePlan push(bool sparse = false) {
    return PhasePlan{EdgeDirection::kPush, false, sparse, false};
  }

  [[nodiscard]] constexpr bool is_pull() const noexcept {
    return direction == EdgeDirection::kPull;
  }

  /// Stable label used in traces, reports, and logs.
  [[nodiscard]] constexpr const char* name() const noexcept {
    if (is_pull()) {
      if (blocked) {
        return gated ? "edge_pull_blocked_gated" : "edge_pull_blocked";
      }
      return gated ? "edge_pull_gated" : "edge_pull";
    }
    return sparse ? "edge_push_sparse" : "edge_push";
  }

  friend constexpr bool operator==(const PhasePlan&,
                                   const PhasePlan&) = default;
};

}  // namespace grazelle
