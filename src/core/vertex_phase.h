// Vertex phase (local update): consumes the aggregates the Edge phase
// produced, applies the program's update rule, and builds the next
// frontier. Statically scheduled — "the work is sufficiently regular
// that load balancing is not a problem" (§5) — with per-thread vertex
// ranges aligned to 64-vertex frontier words so next-frontier bits can
// be set without atomics.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>

#include "core/program.h"
#include "platform/bits.h"
#include "frontier/dense_frontier.h"
#include "platform/types.h"
#include "telemetry/telemetry.h"
#include "threading/reduction.h"
#include "threading/thread_pool.h"

namespace grazelle {

struct VertexPhaseResult {
  /// Vertices whose apply() returned true (joined the next frontier).
  std::uint64_t changed = 0;
  /// Sum of out-degrees over the next frontier — the quantity the
  /// hybrid direction heuristic needs.
  std::uint64_t active_out_edges = 0;
};

template <GraphProgram P>
class VertexPhase {
 public:
  using V = typename P::Value;

  explicit VertexPhase(unsigned num_threads)
      : changed_(num_threads), active_edges_(num_threads) {}

  /// Applies `prog` to every vertex. Reads and *resets* accum[v] to
  /// identity, so the accumulator array is ready for the next Edge
  /// phase. Rebuilds `next` from scratch.
  ///
  /// `t` (optional) gets one span per thread plus kVertexUpdates
  /// (apply() calls) and kFrontierActivations (next-frontier joins).
  VertexPhaseResult run(P& prog, std::span<V> accum,
                        std::span<const std::uint64_t> out_degrees,
                        DenseFrontier& next, ThreadPool& pool,
                        telemetry::Telemetry* t = nullptr) {
    const std::uint64_t n = accum.size();
    const unsigned threads = pool.size();
    changed_.reset(0);
    active_edges_.reset(0);

    // The summary level spans many threads' word ranges, so it is
    // cleared once up front; set() republishes bits as threads rebuild
    // their data words below.
    next.clear_summary();

    pool.run([&](unsigned tid) {
      telemetry::ScopedSpan span(t, tid, "vertex_phase");
      // Word-aligned static split so each thread exclusively owns its
      // frontier words.
      const std::uint64_t words = bits::ceil_div(n, std::uint64_t{64});
      const std::uint64_t words_per_thread =
          bits::ceil_div(words, std::uint64_t{threads});
      const std::uint64_t wbegin =
          std::min<std::uint64_t>(words, tid * words_per_thread);
      const std::uint64_t wend =
          std::min<std::uint64_t>(words, wbegin + words_per_thread);
      for (std::uint64_t w = wbegin; w < wend; ++w) next.words()[w] = 0;

      const std::uint64_t begin = wbegin * 64;
      const std::uint64_t end = std::min<std::uint64_t>(n, wend * 64);
      std::uint64_t changed = 0;
      std::uint64_t active_edges = 0;
      for (std::uint64_t v = begin; v < end; ++v) {
        const V aggregate = accum[v];
        accum[v] = prog.identity();
        if (prog.apply(v, aggregate, tid)) {
          next.set(v);
          ++changed;
          active_edges += out_degrees[v];
        }
      }
      changed_.local(tid) = changed;
      active_edges_.local(tid) = active_edges;
      if (t != nullptr) {
        t->count(tid, telemetry::Counter::kVertexUpdates, end - begin);
        t->count(tid, telemetry::Counter::kFrontierActivations, changed);
      }
    });

    VertexPhaseResult result;
    result.changed =
        changed_.combine(0, [](std::uint64_t a, std::uint64_t b) {
          return a + b;
        });
    result.active_out_edges =
        active_edges_.combine(0, [](std::uint64_t a, std::uint64_t b) {
          return a + b;
        });
    return result;
  }

 private:
  ReductionArray<std::uint64_t> changed_;
  ReductionArray<std::uint64_t> active_edges_;
};

}  // namespace grazelle
