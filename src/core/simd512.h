// AVX-512 pull kernels over the 8-lane Wide Vector-Sparse format —
// the "512-bit vectors in AVX-512" direction the paper sketches in §4.
//
// Two sweep kernels cover the paper's aggregation operators:
//   * wide_pull_sum_sweep  — gather doubles + add (PageRank-shaped)
//   * wide_pull_min_sweep  — frontier-filtered min over u64 labels
//     (Connected Components / BFS-shaped)
// Each walks a range of 8-lane edge vectors keeping a 512-bit
// accumulator, flushing `flush(dest, value)` when the top-level vertex
// changes, and returns the trailing partial — the same contract as the
// 4-lane detail::process_vector_range, so the scheduler-aware merge
// protocol composes with these kernels unchanged.
//
// Scalar fallbacks keep the suite buildable and testable without
// AVX-512; wide_kernels_available() gates the fast path at runtime.
#pragma once

#include <cstdint>
#include <utility>

#include "graph/wide_vector_sparse.h"
#include "platform/cpu_features.h"
#include "platform/types.h"

#if defined(GRAZELLE_HAVE_AVX512)
#include <immintrin.h>
#endif

namespace grazelle::wide {

/// True when the 8-lane AVX-512 kernels can run on this host/build.
[[nodiscard]] inline bool wide_kernels_available() {
#if defined(GRAZELLE_HAVE_AVX512)
  return cpu_features().avx512f;
#else
  return false;
#endif
}

/// Scalar reference sweep: sum of gathered doubles per destination.
template <unsigned Lanes, typename FlushFn>
inline std::pair<VertexId, double> pull_sum_sweep_scalar(
    const WideVectorSparse<Lanes>& graph, const double* messages,
    std::uint64_t begin, std::uint64_t end, FlushFn&& flush) {
  VertexId prev = kInvalidVertex;
  double acc = 0.0;
  const auto vectors = graph.vectors();
  for (std::uint64_t i = begin; i < end; ++i) {
    const auto& ev = vectors[i];
    const VertexId dest = ev.top_level();
    if (dest != prev) {
      if (prev != kInvalidVertex) flush(prev, acc);
      prev = dest;
      acc = 0.0;
    }
    for (unsigned k = 0; k < Lanes; ++k) {
      if (ev.valid(k)) acc += messages[ev.neighbor(k)];
    }
  }
  return {prev, acc};
}

/// Scalar reference sweep: frontier-filtered min of u64 labels.
template <unsigned Lanes, typename FlushFn>
inline std::pair<VertexId, std::uint64_t> pull_min_sweep_scalar(
    const WideVectorSparse<Lanes>& graph, const std::uint64_t* messages,
    const std::uint64_t* frontier_words, std::uint64_t begin,
    std::uint64_t end, FlushFn&& flush) {
  VertexId prev = kInvalidVertex;
  std::uint64_t acc = kInvalidVertex;
  const auto vectors = graph.vectors();
  for (std::uint64_t i = begin; i < end; ++i) {
    const auto& ev = vectors[i];
    const VertexId dest = ev.top_level();
    if (dest != prev) {
      if (prev != kInvalidVertex) flush(prev, acc);
      prev = dest;
      acc = kInvalidVertex;
    }
    for (unsigned k = 0; k < Lanes; ++k) {
      if (!ev.valid(k)) continue;
      const VertexId src = ev.neighbor(k);
      if (frontier_words != nullptr &&
          (((frontier_words[src >> 6] >> (src & 63)) & 1) == 0)) {
        continue;
      }
      const std::uint64_t m = messages[src];
      acc = m < acc ? m : acc;
    }
  }
  return {prev, acc};
}

#if defined(GRAZELLE_HAVE_AVX512)

// GCC 12's avx512fintrin.h trips -Wmaybe-uninitialized on its own
// _mm512_undefined_* helpers inside the gather intrinsics; the warning
// is a known false positive in the system header, not in this code.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

/// AVX-512 sum sweep over 8-lane vectors. Semantics identical to
/// pull_sum_sweep_scalar<8>.
template <typename FlushFn>
inline std::pair<VertexId, double> pull_sum_sweep_avx512(
    const WideVectorSparse<8>& graph, const double* messages,
    std::uint64_t begin, std::uint64_t end, FlushFn&& flush) {
  VertexId prev = kInvalidVertex;
  __m512d vacc = _mm512_setzero_pd();
  const auto vectors = graph.vectors();
  const __m512i id_mask = _mm512_set1_epi64(
      static_cast<long long>(kVertexIdMask));
  for (std::uint64_t i = begin; i < end; ++i) {
    const auto& ev = vectors[i];
    const VertexId dest = ev.top_level();
    if (dest != prev) {
      if (prev != kInvalidVertex) {
        flush(prev, _mm512_reduce_add_pd(vacc));
        vacc = _mm512_setzero_pd();
      }
      prev = dest;
    }
    const __m512i lanes = _mm512_load_si512(ev.lane);
    // Valid lanes have bit 63 set: sign-bit compare against zero.
    const __mmask8 valid =
        _mm512_cmplt_epi64_mask(lanes, _mm512_setzero_si512());
    const __m512i srcs = _mm512_and_si512(lanes, id_mask);
    const __m512d msgs = _mm512_mask_i64gather_pd(
        _mm512_setzero_pd(), valid, srcs, messages, 8);
    vacc = _mm512_add_pd(vacc, msgs);
  }
  return {prev,
          prev == kInvalidVertex ? 0.0 : _mm512_reduce_add_pd(vacc)};
}

/// AVX-512 frontier-filtered min sweep over 8-lane vectors.
template <typename FlushFn>
inline std::pair<VertexId, std::uint64_t> pull_min_sweep_avx512(
    const WideVectorSparse<8>& graph, const std::uint64_t* messages,
    const std::uint64_t* frontier_words, std::uint64_t begin,
    std::uint64_t end, FlushFn&& flush) {
  VertexId prev = kInvalidVertex;
  const __m512i identity =
      _mm512_set1_epi64(static_cast<long long>(kInvalidVertex));
  __m512i vacc = identity;
  const auto vectors = graph.vectors();
  const __m512i id_mask =
      _mm512_set1_epi64(static_cast<long long>(kVertexIdMask));
  const __m512i ones = _mm512_set1_epi64(1);
  for (std::uint64_t i = begin; i < end; ++i) {
    const auto& ev = vectors[i];
    const VertexId dest = ev.top_level();
    if (dest != prev) {
      if (prev != kInvalidVertex) {
        flush(prev, _mm512_reduce_min_epu64(vacc));
        vacc = identity;
      }
      prev = dest;
    }
    const __m512i lanes = _mm512_load_si512(ev.lane);
    __mmask8 mask = _mm512_cmplt_epi64_mask(lanes, _mm512_setzero_si512());
    const __m512i srcs = _mm512_and_si512(lanes, id_mask);
    if (frontier_words != nullptr) {
      // Gather the frontier words, shift the member bit down, test.
      const __m512i words = _mm512_mask_i64gather_epi64(
          _mm512_setzero_si512(), mask, _mm512_srli_epi64(srcs, 6),
          frontier_words, 8);
      const __m512i bit = _mm512_and_si512(
          _mm512_srlv_epi64(words,
                            _mm512_and_si512(srcs, _mm512_set1_epi64(63))),
          ones);
      mask &= _mm512_cmpeq_epi64_mask(bit, ones);
    }
    const __m512i msgs = _mm512_mask_i64gather_epi64(identity, mask, srcs,
                                                     messages, 8);
    vacc = _mm512_min_epu64(vacc, msgs);
  }
  return {prev, prev == kInvalidVertex
                    ? kInvalidVertex
                    : _mm512_reduce_min_epu64(vacc)};
}

#pragma GCC diagnostic pop

#endif  // GRAZELLE_HAVE_AVX512

}  // namespace grazelle::wide
