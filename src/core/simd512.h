// AVX-512 primitives over the fused EdgeVector512 format (DESIGN.md
// §12) — the "512-bit vectors in AVX-512" direction the paper sketches
// in §4, promoted to a first-class engine path.
//
// One EdgeVector512 carries two complete 4-lane EdgeVectors, so the
// fused kernel mirrors the AVX2 kernel (core/simd.h) lane for lane:
// a 512-bit load covers both halves, the valid/frontier masks are
// AVX-512 opmask registers instead of all-ones lane masks, and the
// accumulator combine is a per-half all-or-nothing masked op — a half
// with any valid lane combines all four of its lanes (masked-out lanes
// carry the identity, exactly as the AVX2 kernel's identity blend), a
// half with none is excluded entirely. Flushing extracts each 256-bit
// half and reduces it with simd::reduce, so per-destination results
// are bitwise identical to the 4-lane kernel's.
//
// Everything here compiles only when both GRAZELLE_HAVE_AVX512 and
// GRAZELLE_HAVE_AVX2 are set (the flush path reuses the AVX2 types);
// runtime selection goes through wide_kernels_available()
// (platform/cpu_features.h), which also honors GRAZELLE_FORCE_SCALAR.
#pragma once

#include <cstdint>

#include "core/simd.h"
#include "graph/vector_sparse.h"
#include "platform/cpu_features.h"
#include "platform/types.h"

#if defined(GRAZELLE_HAVE_AVX512)
#include <immintrin.h>
#endif

namespace grazelle::simd512 {

#if defined(GRAZELLE_HAVE_AVX512) && defined(GRAZELLE_HAVE_AVX2)

inline constexpr bool kFusedBuild = true;

struct Vec8U64 {
  __m512i v;
};

struct Vec8F64 {
  __m512d v;
};

template <typename V>
struct Vec8Of;
template <>
struct Vec8Of<double> {
  using type = Vec8F64;
};
template <>
struct Vec8Of<std::uint64_t> {
  using type = Vec8U64;
};

[[nodiscard]] inline Vec8U64 splat8(std::uint64_t x) noexcept {
  return {_mm512_set1_epi64(static_cast<long long>(x))};
}

[[nodiscard]] inline Vec8F64 splat8(double x) noexcept {
  return {_mm512_set1_pd(x)};
}

/// Aligned load of one fused vector's eight lanes (half 0 in lanes
/// 0..3, half 1 in lanes 4..7).
[[nodiscard]] inline Vec8U64 load_lanes(const EdgeVector512& fv) noexcept {
  return {_mm512_load_si512(&fv)};
}

/// Opmask of lanes whose valid bit (bit 63 = the sign bit) is set.
[[nodiscard]] inline __mmask8 valid_mask(Vec8U64 lanes) noexcept {
  return _mm512_cmplt_epi64_mask(lanes.v, _mm512_setzero_si512());
}

[[nodiscard]] inline Vec8U64 neighbor_ids(Vec8U64 lanes) noexcept {
  return {_mm512_and_si512(
      lanes.v, _mm512_set1_epi64(static_cast<long long>(kVertexIdMask)))};
}

/// Per-half all-or-nothing combine mask: a half contributes all four
/// of its lanes when it has any valid (and row-allowed) lane, matching
/// the AVX2 kernel's unconditional identity-blended combine per
/// occupied EdgeVector; an all-invalid half (layout padding, or a
/// converged row) is excluded entirely.
[[nodiscard]] inline __mmask8 half_occupancy_mask(__mmask8 valid) noexcept {
  return static_cast<__mmask8>(((valid & 0x0F) != 0 ? 0x0F : 0) |
                               ((valid & 0xF0) != 0 ? 0xF0 : 0));
}

// GCC 12's avx512fintrin.h trips -Wmaybe-uninitialized on its own
// _mm512_undefined_* helpers inside the gather intrinsics; the warning
// is a known false positive in the system header, not in this code.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

/// Opmask of `k` lanes whose frontier bit is set. The words are pulled
/// with a masked hardware gather (eight scattered scalar loads would
/// need extracts on this path); bit extraction mirrors
/// simd::frontier_mask, so the admitted lane set is identical.
[[nodiscard]] inline __mmask8 frontier_mask(const std::uint64_t* words,
                                            Vec8U64 ids,
                                            __mmask8 k) noexcept {
  const __m512i gathered = _mm512_mask_i64gather_epi64(
      _mm512_setzero_si512(), k, _mm512_srli_epi64(ids.v, 6),
      reinterpret_cast<const long long*>(words), 8);
  const __m512i bit_idx = _mm512_and_si512(ids.v, _mm512_set1_epi64(63));
  const __m512i bit = _mm512_and_si512(_mm512_srlv_epi64(gathered, bit_idx),
                                       _mm512_set1_epi64(1));
  return k & _mm512_cmpeq_epi64_mask(bit, _mm512_set1_epi64(1));
}

/// Masked gather of doubles: lanes outside `k` keep `defaults`.
[[nodiscard]] inline Vec8F64 gather_masked(const double* base, Vec8U64 idx,
                                           __mmask8 k,
                                           Vec8F64 defaults) noexcept {
  return {_mm512_mask_i64gather_pd(defaults.v, k, idx.v, base, 8)};
}

/// Masked gather of 64-bit integers.
[[nodiscard]] inline Vec8U64 gather_masked(const std::uint64_t* base,
                                           Vec8U64 idx, __mmask8 k,
                                           Vec8U64 defaults) noexcept {
  return {_mm512_mask_i64gather_epi64(
      defaults.v, k, idx.v, reinterpret_cast<const long long*>(base), 8)};
}

#pragma GCC diagnostic pop

/// Per-lane blend: lanes in `k` take `b`, the rest keep `a`.
[[nodiscard]] inline Vec8U64 blend(Vec8U64 a, Vec8U64 b,
                                   __mmask8 k) noexcept {
  return {_mm512_mask_blend_epi64(k, a.v, b.v)};
}

[[nodiscard]] inline Vec8F64 blend(Vec8F64 a, Vec8F64 b,
                                   __mmask8 k) noexcept {
  return {_mm512_mask_blend_pd(k, a.v, b.v)};
}

[[nodiscard]] inline Vec8F64 add(Vec8F64 a, Vec8F64 b) noexcept {
  return {_mm512_add_pd(a.v, b.v)};
}

[[nodiscard]] inline Vec8F64 mul(Vec8F64 a, Vec8F64 b) noexcept {
  return {_mm512_mul_pd(a.v, b.v)};
}

/// Loads one fused weight vector as eight doubles.
[[nodiscard]] inline Vec8F64 load_weights(const WeightVector512& wv)
    noexcept {
  return {_mm512_load_pd(wv.half[0].w)};
}

/// Masked accumulator combine: lanes in `k` combine with `msgs`, the
/// rest pass through unchanged. The per-lane ops match simd::combine
/// (add_pd / min_pd; signed 64-bit min — all Grazelle values fit in
/// 48 bits).
template <simd::CombineOp Op>
[[nodiscard]] inline Vec8F64 combine_masked(Vec8F64 acc, Vec8F64 msgs,
                                            __mmask8 k) noexcept {
  if constexpr (Op == simd::CombineOp::kAdd) {
    return {_mm512_mask_add_pd(acc.v, k, acc.v, msgs.v)};
  } else {
    return {_mm512_mask_min_pd(acc.v, k, acc.v, msgs.v)};
  }
}

template <simd::CombineOp Op>
[[nodiscard]] inline Vec8U64 combine_masked(Vec8U64 acc, Vec8U64 msgs,
                                            __mmask8 k) noexcept {
  static_assert(Op == simd::CombineOp::kMin || Op == simd::CombineOp::kOr,
                "integer aggregation supports min and or only");
  if constexpr (Op == simd::CombineOp::kOr) {
    return {_mm512_mask_or_epi64(acc.v, k, acc.v, msgs.v)};
  } else {
    return {_mm512_mask_min_epi64(acc.v, k, acc.v, msgs.v)};
  }
}

/// The 256-bit half `h` of an 8-lane accumulator as the AVX2 type, so
/// flushes reduce with exactly simd::reduce's arithmetic.
[[nodiscard]] inline simd::VecF64 half(Vec8F64 x, unsigned h) noexcept {
  return {h == 0 ? _mm512_castpd512_pd256(x.v)
                 : _mm512_extractf64x4_pd(x.v, 1)};
}

[[nodiscard]] inline simd::VecU64 half(Vec8U64 x, unsigned h) noexcept {
  return {h == 0 ? _mm512_castsi512_si256(x.v)
                 : _mm512_extracti64x4_epi64(x.v, 1)};
}

#else  // !(GRAZELLE_HAVE_AVX512 && GRAZELLE_HAVE_AVX2)

inline constexpr bool kFusedBuild = false;

#endif

}  // namespace grazelle::simd512
