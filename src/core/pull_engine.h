// Edge-Pull phase over a Vector-Sparse-Destination edge array.
//
// This file embodies both contributions of the paper:
//  * the scheduler-aware inner-loop parallelization (§3) — thread-local
//    running aggregates, one plain store per destination, per-chunk
//    merge-buffer deposits, no synchronization anywhere; and
//  * the Vector-Sparse AVX2 kernel (§4, Listing 7) — aligned vector
//    loads, per-lane predication from the valid bits, masked gathers of
//    source values, and a vector accumulator that is horizontally
//    reduced only when the top-level vertex changes.
//
// All the parallelization modes evaluated in Figures 5-8 are here:
//   kSequential          — one thread over the whole edge-vector array
//   kVertexParallel      — outer loop (destinations) parallel, inner
//                          loop serial: the classic pull engine
//   kTraditional         — inner loop parallel with the traditional
//                          interface: one atomic combine per vector
//   kTraditionalNoAtomic — same but with racy plain updates (incorrect
//                          under contention; benchmark-only, as in the
//                          paper's "Traditional, Nonatomic" series)
//   kSchedulerAware      — the paper's contribution
//
// Two execution-layer extensions ride on top of every mode
// (DESIGN.md §10): distance-ahead software prefetch of upcoming edge
// vectors and their gather targets, and cache-blocked execution —
// each chunk is run block-major over the graph's source-range block
// index so the random source gathers stay confined to an LLC-resident
// window. Both preserve bit-identical results: prefetch only hints,
// and blocking keeps each destination's vector visit order, SIMD lane
// packing, and the chunk/merge-buffer write-once protocol exactly as
// in the unblocked walk (per-destination vector accumulators are
// parked in a scratch array between blocks and reduced once at flush).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/merge_buffer.h"
#include "core/options.h"
#include "core/simd512.h"
#include "graph/block_index.h"
#include "platform/cpu_features.h"
#include "platform/aligned_buffer.h"
#include "platform/bits.h"
#include "platform/prefetch.h"
#include "platform/timer.h"
#include "telemetry/telemetry.h"
#include "threading/reduction.h"
#include "core/program.h"
#include "frontier/dense_frontier.h"
#include "graph/vector_sparse.h"
#include "platform/types.h"
#include "threading/atomics.h"
#include "threading/parallel_for.h"

namespace grazelle {

namespace detail {

/// Scalar per-lane accumulation of one edge vector into `acc`.
/// `SummaryGate` additionally pre-tests each source's frontier-word
/// summary bit — on sparse frontiers the summary stays hot in L1 while
/// the bitmask does not (see HierarchicalFrontier).
template <GraphProgram P, bool SummaryGate = false>
inline void accumulate_vector_scalar(const P& prog, const EdgeVector& ev,
                                     const WeightVector* wv,
                                     const DenseFrontier* frontier,
                                     typename P::Value& acc) {
  using V = typename P::Value;
  const V* messages = prog.message_array();
  for (unsigned k = 0; k < kEdgeVectorLanes; ++k) {
    if (!ev.valid(k)) continue;
    const VertexId src = ev.neighbor(k);
    if constexpr (P::kUsesFrontier && SummaryGate) {
      if (!frontier->word_maybe_nonzero(src >> 6)) continue;
    }
    if constexpr (P::kUsesFrontier) {
      if (!frontier->test(src)) continue;
    }
    V msg;
    if constexpr (P::kMessageIsSourceId) {
      msg = static_cast<V>(src);
    } else {
      msg = messages[src];
    }
    if constexpr (P::kWeight != simd::WeightOp::kNone) {
      msg = apply_weight_scalar<P::kWeight>(msg, wv->w[k]);
    }
    acc = combine_scalar<P::kCombine>(acc, msg);
  }
}

#if defined(GRAZELLE_HAVE_AVX2)

template <typename V>
struct VecOf;
template <>
struct VecOf<double> {
  using type = simd::VecF64;
};
template <>
struct VecOf<std::uint64_t> {
  using type = simd::VecU64;
};

/// Vector accumulation of one edge vector into the 4-lane accumulator
/// `vacc` (Listing 7's body, generalized over program traits).
/// `SummaryGate` swaps the membership test for the summary-pretested
/// variant used by the frontier-gated pull path.
template <GraphProgram P, bool SummaryGate = false>
inline void accumulate_vector_simd(const P& prog, const EdgeVector& ev,
                                   const WeightVector* wv,
                                   const DenseFrontier* frontier,
                                   typename VecOf<typename P::Value>::type&
                                       vacc) {
  using V = typename P::Value;
  using Vec = typename VecOf<V>::type;

  const simd::VecU64 lanes = simd::load_lanes(ev);
  simd::VecU64 mask = simd::valid_mask(lanes);
  const simd::VecU64 srcs = simd::neighbor_ids(lanes);
  if constexpr (P::kUsesFrontier && SummaryGate) {
    mask = simd::bitand_(
        mask, simd::frontier_mask_summary(frontier->words(),
                                          frontier->summary_words(), srcs));
  } else if constexpr (P::kUsesFrontier) {
    mask = simd::bitand_(mask, simd::frontier_mask(frontier->words(), srcs));
  }

  const Vec identity = simd::splat(prog.identity());
  Vec msgs;
  if constexpr (P::kMessageIsSourceId) {
    static_assert(std::is_same_v<V, std::uint64_t>);
    msgs = simd::blend(identity, srcs, mask);
  } else {
    msgs = simd::gather_masked(prog.message_array(), srcs, mask, identity);
    if constexpr (P::kWeight != simd::WeightOp::kNone) {
      static_assert(std::is_same_v<V, double>,
                    "weighted programs aggregate doubles");
      const simd::VecF64 w = simd::load_weights(*wv);
      simd::VecF64 weighted;
      if constexpr (P::kWeight == simd::WeightOp::kAdd) {
        weighted = simd::add(msgs, w);
      } else {
        weighted = simd::mul(msgs, w);
      }
      // Re-blend so masked-out lanes stay at identity after weighting.
      msgs = simd::blend(identity, weighted, mask);
    }
  }
  vacc = simd::combine<P::kCombine>(vacc, msgs);
}

#endif  // GRAZELLE_HAVE_AVX2

/// Distance-ahead software prefetch, issued once per visited edge
/// vector: the vector `dist` ahead (keeps the edge stream beyond the
/// hardware prefetcher's reach in flight) and the source values
/// feeding the vector dist/2 ahead — by the time the walker reaches
/// that vector its gather lines have arrived, and the half-distance
/// vector itself is already cached, so decoding its lanes here is
/// cheap. Programs whose message is the source id itself (BFS) gather
/// nothing and only the edge stream is prefetched. dist == 0 disables
/// both; compilers hoist that test out of the walk loops.
template <GraphProgram P>
inline void prefetch_ahead(const P& prog, const EdgeVector* vectors,
                           std::uint64_t i, std::uint64_t end,
                           unsigned dist) {
  if (dist == 0) return;
  if (i + dist < end) platform::prefetch_read(vectors + i + dist);
  if constexpr (!P::kMessageIsSourceId) {
    const std::uint64_t ahead = i + dist / 2;
    if (ahead > i && ahead < end) {
      const EdgeVector& ev = vectors[ahead];
      const auto* messages = prog.message_array();
      for (unsigned k = 0; k < kEdgeVectorLanes; ++k) {
        if (ev.valid(k)) platform::prefetch_read(messages + ev.neighbor(k));
      }
    }
  }
}

/// Destination (top-level vertex) owning edge vector `i`. Zero-count
/// destinations share first_vector with their successor and the owner
/// is the last entry of such a run, hence upper_bound minus one.
[[nodiscard]] inline VertexId dest_of_vector(
    std::span<const VertexVectorRange> index, std::uint64_t i) noexcept {
  const auto it = std::upper_bound(
      index.begin(), index.end(), i,
      [](std::uint64_t value, const VertexVectorRange& r) {
        return value < r.first_vector;
      });
  return static_cast<VertexId>(it - index.begin()) - 1;
}

/// Walks edge vectors [begin, end) maintaining the running aggregate of
/// the current top-level vertex. Whenever the top-level vertex changes,
/// calls `flush(dest, aggregate)`. Returns the trailing (dest,
/// aggregate) pair — {kInvalidVertex, identity} when the range is
/// empty. Destinations for which P::kUsesConvergedSet reports
/// skip_destination still flow through the dest-change bookkeeping but
/// contribute identity.
template <GraphProgram P, bool Vectorized, typename FlushFn>
inline std::pair<VertexId, typename P::Value> process_vector_range(
    const P& prog, const VectorSparseGraph& graph,
    const DenseFrontier* frontier, std::uint64_t begin, std::uint64_t end,
    unsigned prefetch, FlushFn&& flush) {
  using V = typename P::Value;
  const std::span<const EdgeVector> vectors = graph.vectors();
  const std::span<const WeightVector> weights = graph.weights();

  VertexId prev = kInvalidVertex;
  [[maybe_unused]] V acc = prog.identity();

#if defined(GRAZELLE_HAVE_AVX2)
  using Vec = typename VecOf<V>::type;
  [[maybe_unused]] Vec vacc{};
  if constexpr (Vectorized) vacc = simd::splat(prog.identity());
#else
  static_assert(!Vectorized, "vector kernels not built");
#endif

  bool skip_current = false;
  for (std::uint64_t i = begin; i < end; ++i) {
    prefetch_ahead(prog, vectors.data(), i, end, prefetch);
    const EdgeVector& ev = vectors[i];
    const VertexId dest = ev.top_level();
    if (dest != prev) {
      if (prev != kInvalidVertex) {
        if constexpr (Vectorized) {
#if defined(GRAZELLE_HAVE_AVX2)
          flush(prev, simd::reduce<P::kCombine>(vacc));
          vacc = simd::splat(prog.identity());
#endif
        } else {
          flush(prev, acc);
          acc = prog.identity();
        }
      }
      prev = dest;
      if constexpr (P::kUsesConvergedSet) {
        skip_current = prog.skip_destination(dest);
      }
    }
    if constexpr (P::kUsesConvergedSet) {
      if (skip_current) continue;
    }
    const WeightVector* wv = weights.empty() ? nullptr : &weights[i];
    if constexpr (Vectorized) {
#if defined(GRAZELLE_HAVE_AVX2)
      accumulate_vector_simd(prog, ev, wv, frontier, vacc);
#endif
    } else {
      accumulate_vector_scalar(prog, ev, wv, frontier, acc);
    }
  }

  if constexpr (Vectorized) {
#if defined(GRAZELLE_HAVE_AVX2)
    return {prev, prev == kInvalidVertex ? prog.identity()
                                         : simd::reduce<P::kCombine>(vacc)};
#else
    return {prev, prog.identity()};
#endif
  } else {
    return {prev, acc};
  }
}

/// Prefetch-free overload kept for callers that walk tiny ranges
/// (kernel microbenches, single-vector traditional-mode probes).
template <GraphProgram P, bool Vectorized, typename FlushFn>
inline std::pair<VertexId, typename P::Value> process_vector_range(
    const P& prog, const VectorSparseGraph& graph,
    const DenseFrontier* frontier, std::uint64_t begin, std::uint64_t end,
    FlushFn&& flush) {
  return process_vector_range<P, Vectorized>(prog, graph, frontier, begin,
                                             end, /*prefetch=*/0u,
                                             std::forward<FlushFn>(flush));
}

/// Tests one bit of the per-phase candidate bitmap (see
/// PullEdgePhase::build_candidates): bit i set ⇔ edge vector i has at
/// least one valid lane whose source is in the frontier. The word is
/// reused for 64 consecutive vectors, so on a sequential walk this is
/// one L1 load plus a shift-and-test per vector — cheap enough that
/// skipping stays profitable even where the per-vector work it avoids
/// is only a handful of instructions.
[[nodiscard]] inline bool candidate_vector(const std::uint64_t* candidates,
                                           std::uint64_t i) noexcept {
  return ((candidates[i >> 6] >> (i & 63)) & 1) != 0;
}

/// Frontier-gated variant of process_vector_range: each vector is
/// pre-tested against the candidate bitmap and provably inactive
/// vectors are skipped wholesale — no 32-byte vector load, no
/// top-level reassembly, no dest bookkeeping, no masked gathers.
/// Skipped vectors are counted in `skipped`. A skipped vector
/// contributes exactly the identity, so the dest-change/flush protocol
/// is preserved by simply not surfacing its destination: flushes fire
/// on the next *occupied* vector's dest change, trailing skipped
/// destinations keep their pre-primed identity accumulator, and the
/// returned trailing pair reflects the last occupied destination.
template <GraphProgram P, bool Vectorized, typename FlushFn>
inline std::pair<VertexId, typename P::Value> process_vector_range_gated(
    const P& prog, const VectorSparseGraph& graph,
    const DenseFrontier* frontier, const std::uint64_t* candidates,
    std::uint64_t begin, std::uint64_t end, unsigned prefetch,
    std::uint64_t& skipped, FlushFn&& flush) {
  static_assert(P::kUsesFrontier,
                "gating is meaningful only for frontier-driven programs");
  using V = typename P::Value;
  const std::span<const EdgeVector> vectors = graph.vectors();
  const std::span<const WeightVector> weights = graph.weights();

  VertexId prev = kInvalidVertex;
  [[maybe_unused]] V acc = prog.identity();

#if defined(GRAZELLE_HAVE_AVX2)
  using Vec = typename VecOf<V>::type;
  [[maybe_unused]] Vec vacc{};
  if constexpr (Vectorized) vacc = simd::splat(prog.identity());
#else
  static_assert(!Vectorized, "vector kernels not built");
#endif

  bool skip_current = false;
  // Word-driven tzcnt scan of the candidate bitmap: one zero test
  // retires up to 64 provably inactive vectors, and occupied vectors
  // are located with count_trailing_zeros — the same scan idiom the
  // frontier itself uses (§5). On a sparse frontier the walk cost
  // collapses to roughly one load per 64 vectors.
  std::uint64_t i = begin;
  while (i < end) {
    const std::uint64_t word = candidates[i >> 6] >> (i & 63);
    if (word == 0) {
      const std::uint64_t next = std::min(end, ((i >> 6) + 1) << 6);
      skipped += next - i;
      i = next;
      continue;
    }
    const unsigned tz = bits::count_trailing_zeros(word);
    if (i + tz >= end) {
      skipped += end - i;
      break;
    }
    skipped += tz;
    i += tz;
    prefetch_ahead(prog, vectors.data(), i, end, prefetch);
    const EdgeVector& ev = vectors[i];
    const VertexId dest = ev.top_level();
    if (dest != prev) {
      if (prev != kInvalidVertex) {
        if constexpr (Vectorized) {
#if defined(GRAZELLE_HAVE_AVX2)
          flush(prev, simd::reduce<P::kCombine>(vacc));
          vacc = simd::splat(prog.identity());
#endif
        } else {
          flush(prev, acc);
          acc = prog.identity();
        }
      }
      prev = dest;
      if constexpr (P::kUsesConvergedSet) {
        skip_current = prog.skip_destination(dest);
      }
    }
    bool accumulate = true;
    if constexpr (P::kUsesConvergedSet) {
      accumulate = !skip_current;
    }
    if (accumulate) {
      const WeightVector* wv = weights.empty() ? nullptr : &weights[i];
      if constexpr (Vectorized) {
#if defined(GRAZELLE_HAVE_AVX2)
        accumulate_vector_simd<P, true>(prog, ev, wv, frontier, vacc);
#endif
      } else {
        accumulate_vector_scalar<P, true>(prog, ev, wv, frontier, acc);
      }
    }
    ++i;
  }

  if constexpr (Vectorized) {
#if defined(GRAZELLE_HAVE_AVX2)
    return {prev, prev == kInvalidVertex ? prog.identity()
                                         : simd::reduce<P::kCombine>(vacc)};
#else
    return {prev, prog.identity()};
#endif
  } else {
    return {prev, acc};
  }
}

}  // namespace detail

/// Fully-resolved execution knobs for one pull Edge phase. The engine
/// derives this from EngineOptions + PhasePlan; tests and benches
/// construct it directly to pin a configuration.
struct PullRunConfig {
  PullParallelism mode = PullParallelism::kSchedulerAware;
  /// Edge vectors per scheduler chunk (0 = 32 * threads chunks, §5).
  std::uint64_t chunk_vectors = 0;
  /// Apply the frontier-occupancy gate (candidate bitmap + tzcnt walk).
  bool gated = false;
  /// Cache-block index to execute block-major (DESIGN.md §10).
  /// nullptr — or a trivial single-block index — runs the classic
  /// single-pass walk. Must stay valid for the duration of run().
  const BlockIndex* blocks = nullptr;
  /// Edge vectors of distance-ahead software prefetch; 0 disables.
  unsigned prefetch_distance = 0;
};

/// Edge-Pull phase runner. Owns no data; operates on the caller's
/// accumulator array (one Value per vertex, pre-initialized to
/// identity; the Vertex phase re-initializes entries as it consumes
/// them).
template <GraphProgram P, bool Vectorized>
class PullEdgePhase {
 public:
  using V = typename P::Value;

  /// Runs one pull Edge phase over `graph` (a VSD structure).
  ///
  /// `chunk_vectors` is the scheduling granularity in edge vectors per
  /// chunk (0 = the Grazelle default of 32·threads chunks, §5).
  /// `merge_buffer` is only used in kSchedulerAware mode and is resized
  /// as needed. `frontier` may be null when P::kUsesFrontier is false.
  ///
  /// `gated` selects the frontier-gated walkers. The phase first
  /// scatters the active frontier through the graph's source->vector
  /// incidence index into a per-vector candidate bitmap — cost
  /// proportional to the frontier's out-edges, exactly the regime the
  /// gate heuristic admits — then the walkers test one bitmap bit per
  /// vector and skip provably inactive vectors wholesale
  /// (last_vectors_skipped() reports how many). A no-op for programs
  /// with kUsesFrontier == false or when `frontier` is null.
  ///
  /// `t` (optional) receives per-chunk trace spans plus the phase's
  /// vector/edge counters. Ungated runs examine every valid lane, so
  /// kEdgesTouched grows by num_edges() exactly; gated runs report
  /// lanes examined (visited vectors × lane width), an upper bound.
  void run(const P& prog, const VectorSparseGraph& graph,
           std::span<V> accum, const DenseFrontier* frontier,
           ThreadPool& pool, const PullRunConfig& cfg,
           MergeBuffer<V>& merge_buffer,
           telemetry::Telemetry* t = nullptr) {
    last_vectors_skipped_ = 0;
    last_blocks_executed_ = 0;
    last_block_switches_ = 0;
    last_merge_seconds_ = 0.0;
    last_idle_seconds_ = 0.0;
    telemetry_ = t;
    prefetch_distance_ = cfg.prefetch_distance;
    const std::uint64_t n = graph.num_vectors();
    if (n == 0) return;
    const std::uint64_t chunk =
        cfg.chunk_vectors != 0
            ? cfg.chunk_vectors
            : std::max<std::uint64_t>(
                  1, bits::ceil_div(n, std::uint64_t{32} * pool.size()));

    if (skipped_.size() < pool.size()) {
      skipped_ = ReductionArray<std::uint64_t>(pool.size(), 0);
    }
    skipped_.reset(0);

    bool gated = false;
    if constexpr (P::kUsesFrontier) {
      gated = cfg.gated && frontier != nullptr;
    }
    if (gated) {
      {
        telemetry::ScopedSpan span(t, 0, "gate_build");
        build_candidates(graph, frontier);
      }
      telemetry::count(t, 0, telemetry::Counter::kGateBuilds, 1);
    }

    const bool blocked = cfg.blocks != nullptr && !cfg.blocks->trivial();
    if (blocked) {
      if (blocks_executed_.size() < pool.size()) {
        blocks_executed_ = ReductionArray<std::uint64_t>(pool.size(), 0);
        block_switches_ = ReductionArray<std::uint64_t>(pool.size(), 0);
      }
      blocks_executed_.reset(0);
      block_switches_.reset(0);
      if (block_scratch_.size() < pool.size()) {
        block_scratch_.resize(pool.size());
        block_dests_.resize(pool.size());
      }
      bool dispatched = false;
      if constexpr (P::kUsesFrontier) {
        if (gated) {
          run_blocked<true>(prog, graph, *cfg.blocks, accum, frontier, pool,
                            cfg.mode, chunk, merge_buffer);
          dispatched = true;
        }
      }
      if (!dispatched) {
        run_blocked<false>(prog, graph, *cfg.blocks, accum, frontier, pool,
                           cfg.mode, chunk, merge_buffer);
      }
      last_blocks_executed_ = blocks_executed_.combine(
          std::uint64_t{0},
          [](std::uint64_t a, std::uint64_t b) { return a + b; });
      last_block_switches_ = block_switches_.combine(
          std::uint64_t{0},
          [](std::uint64_t a, std::uint64_t b) { return a + b; });
    } else if (gated) {
      if constexpr (P::kUsesFrontier) {
        switch (cfg.mode) {
          case PullParallelism::kSequential:
            run_sequential_gated(prog, graph, accum, frontier);
            break;
          case PullParallelism::kVertexParallel:
            run_vertex_parallel_gated(prog, graph, accum, frontier, pool);
            break;
          case PullParallelism::kTraditional:
            run_traditional_gated<true>(prog, graph, accum, frontier, pool,
                                        chunk);
            break;
          case PullParallelism::kTraditionalNoAtomic:
            run_traditional_gated<false>(prog, graph, accum, frontier, pool,
                                         chunk);
            break;
          case PullParallelism::kSchedulerAware:
            run_scheduler_aware_gated(prog, graph, accum, frontier, pool,
                                      chunk, merge_buffer);
            break;
        }
      }
    } else {
      switch (cfg.mode) {
        case PullParallelism::kSequential:
          run_sequential(prog, graph, accum, frontier);
          break;
        case PullParallelism::kVertexParallel:
          run_vertex_parallel(prog, graph, accum, frontier, pool);
          break;
        case PullParallelism::kTraditional:
          run_traditional<true>(prog, graph, accum, frontier, pool, chunk);
          break;
        case PullParallelism::kTraditionalNoAtomic:
          run_traditional<false>(prog, graph, accum, frontier, pool, chunk);
          break;
        case PullParallelism::kSchedulerAware:
          run_scheduler_aware(prog, graph, accum, frontier, pool, chunk,
                              merge_buffer);
          break;
      }
    }

    if (gated) {
      last_vectors_skipped_ = skipped_.combine(
          std::uint64_t{0},
          [](std::uint64_t a, std::uint64_t b) { return a + b; });
    }
    if (t != nullptr) {
      if (gated) {
        const std::uint64_t visited = n - std::min(n, last_vectors_skipped_);
        t->count(0, telemetry::Counter::kVectorsSkipped,
                 last_vectors_skipped_);
        t->count(0, telemetry::Counter::kVectorsVisited, visited);
        t->count(0, telemetry::Counter::kEdgesTouched,
                 visited * kEdgeVectorLanes);
      } else {
        // Ungated: every vector is walked and every valid lane examined.
        t->count(0, telemetry::Counter::kVectorsVisited, n);
        t->count(0, telemetry::Counter::kEdgesTouched, graph.num_edges());
      }
      if (blocked) {
        t->count(0, telemetry::Counter::kBlocksExecuted,
                 last_blocks_executed_);
        t->count(0, telemetry::Counter::kBlockSwitches,
                 last_block_switches_);
      }
    }
  }

  /// Positional-argument compatibility overload (pre-blocking API).
  void run(const P& prog, const VectorSparseGraph& graph,
           std::span<V> accum, const DenseFrontier* frontier,
           ThreadPool& pool, PullParallelism mode,
           std::uint64_t chunk_vectors, MergeBuffer<V>& merge_buffer,
           bool gated = false, telemetry::Telemetry* t = nullptr) {
    PullRunConfig cfg;
    cfg.mode = mode;
    cfg.chunk_vectors = chunk_vectors;
    cfg.gated = gated;
    run(prog, graph, accum, frontier, pool, cfg, merge_buffer, t);
  }

  /// Wall-clock seconds spent in the sequential merge of the last
  /// scheduler-aware run (Figure 5b's "Merge" bucket).
  [[nodiscard]] double last_merge_seconds() const noexcept {
    return last_merge_seconds_;
  }

  /// Aggregate idle time of the last scheduler-aware run (Figure 5b's
  /// "Idle" bucket): threads * phase wall time - total busy time. A
  /// thread is busy from its first chunk claim to its last chunk's
  /// finish; the remainder is load-imbalance tail wait.
  [[nodiscard]] double last_idle_seconds() const noexcept {
    return last_idle_seconds_;
  }

  /// Edge vectors the last gated run skipped via the occupancy test
  /// (0 after ungated runs).
  [[nodiscard]] std::uint64_t last_vectors_skipped() const noexcept {
    return last_vectors_skipped_;
  }

  /// Non-empty (chunk, block) segments the last blocked run executed
  /// (0 after unblocked runs).
  [[nodiscard]] std::uint64_t last_blocks_executed() const noexcept {
    return last_blocks_executed_;
  }

  /// Transitions between distinct source blocks within chunks during
  /// the last blocked run — each one re-targets the gathers at a new
  /// LLC-resident source window.
  [[nodiscard]] std::uint64_t last_block_switches() const noexcept {
    return last_block_switches_;
  }

 private:
  /// Builds the per-vector candidate bitmap for one gated phase: the
  /// active frontier is scattered through the graph's source->vector
  /// incidence index (VectorSparseGraph::source_vectors), setting bit i
  /// exactly when edge vector i holds an active source lane. The
  /// scatter costs one store per active out-edge — proportional to
  /// |frontier|, not |E| — and the walk over the frontier itself rides
  /// the hierarchical frontier's summary (for_each skips empty
  /// 64-word blocks). Unmarked vectors are *proven* inactive, so the
  /// gated walkers need no further per-vector frontier test.
  void build_candidates(const VectorSparseGraph& graph,
                        const DenseFrontier* frontier) {
    const std::uint64_t words =
        bits::ceil_div(graph.num_vectors(), std::uint64_t{64});
    if (candidates_.size() < words) candidates_.reset(words);
    std::fill_n(candidates_.data(), words, std::uint64_t{0});
    const std::span<const EdgeIndex> offsets = graph.source_offsets();
    const std::span<const std::uint32_t> incident = graph.source_vectors();
    std::uint64_t* bits_out = candidates_.data();
    frontier->for_each([&](VertexId v) {
      const EdgeIndex hi = offsets[v + 1];
      for (EdgeIndex j = offsets[v]; j < hi; ++j) {
        const std::uint64_t i = incident[j];
        bits_out[i >> 6] |= std::uint64_t{1} << (i & 63);
      }
    });
  }

  void run_sequential(const P& prog, const VectorSparseGraph& graph,
                      std::span<V> accum, const DenseFrontier* frontier) {
    auto [dest, value] = detail::process_vector_range<P, Vectorized>(
        prog, graph, frontier, 0, graph.num_vectors(), prefetch_distance_,
        [&](VertexId d, V v) { accum[d] = v; });
    if (dest != kInvalidVertex) accum[dest] = value;
  }

  void run_sequential_gated(const P& prog, const VectorSparseGraph& graph,
                            std::span<V> accum,
                            const DenseFrontier* frontier) {
    std::uint64_t skipped = 0;
    auto [dest, value] = detail::process_vector_range_gated<P, Vectorized>(
        prog, graph, frontier, candidates_.data(), 0, graph.num_vectors(),
        prefetch_distance_, skipped,
        [&](VertexId d, V v) { accum[d] = v; });
    if (dest != kInvalidVertex) accum[dest] = value;
    skipped_.local(0) += skipped;
  }

  void run_vertex_parallel(const P& prog, const VectorSparseGraph& graph,
                           std::span<V> accum, const DenseFrontier* frontier,
                           ThreadPool& pool) {
    const auto index = graph.index();
    parallel_for(pool, graph.num_vertices(), 1024, [&](std::uint64_t v) {
      const VertexVectorRange& r = index[v];
      if (r.vector_count == 0) return;
      auto [dest, value] = detail::process_vector_range<P, Vectorized>(
          prog, graph, frontier, r.first_vector,
          r.first_vector + r.vector_count, prefetch_distance_,
          [&](VertexId, V) {});
      accum[dest] = value;
    });
  }

  /// Gated vertex-parallel: the destination's whole-range source span
  /// (vertex_spans) is tested first — one O(1) summary probe can prove
  /// the entire in-neighborhood inactive — before falling back to
  /// per-vector candidate-bitmap gating inside the range.
  void run_vertex_parallel_gated(const P& prog,
                                 const VectorSparseGraph& graph,
                                 std::span<V> accum,
                                 const DenseFrontier* frontier,
                                 ThreadPool& pool) {
    const auto index = graph.index();
    const auto vertex_spans = graph.vertex_spans();
    parallel_for_chunks(
        pool, graph.num_vertices(), 1024,
        [&](unsigned tid, const Chunk& c) {
          std::uint64_t skipped = 0;
          for (std::uint64_t v = c.begin; v < c.end; ++v) {
            const VertexVectorRange& r = index[v];
            if (r.vector_count == 0) continue;
            const SourceWordSpan span = vertex_spans[v];
            if (!frontier->span_maybe_active(
                    span.min_word,
                    static_cast<std::uint64_t>(span.max_word) + 1)) {
              skipped += r.vector_count;
              continue;
            }
            auto [dest, value] =
                detail::process_vector_range_gated<P, Vectorized>(
                    prog, graph, frontier, candidates_.data(),
                    r.first_vector, r.first_vector + r.vector_count,
                    prefetch_distance_, skipped, [&](VertexId, V) {});
            if (dest != kInvalidVertex) accum[dest] = value;
          }
          skipped_.local(tid) += skipped;
        },
        telemetry_, "pull_chunk");
  }

  template <bool Atomic>
  void run_traditional(const P& prog, const VectorSparseGraph& graph,
                       std::span<V> accum, const DenseFrontier* frontier,
                       ThreadPool& pool, std::uint64_t chunk) {
    // Traditional interface: the loop body sees one iteration (one edge
    // vector) at a time and must publish its partial immediately —
    // one shared-memory combine per vector, atomic for correctness.
    const std::uint64_t n = graph.num_vectors();
    parallel_for(pool, n, chunk, [&](std::uint64_t i) {
      detail::prefetch_ahead(prog, graph.vectors().data(), i, n,
                             prefetch_distance_);
      auto [dest, value] = detail::process_vector_range<P, Vectorized>(
          prog, graph, frontier, i, i + 1, [&](VertexId, V) {});
      if (dest == kInvalidVertex) return;
      constexpr bool kForce = program_force_writes<P>();
      if constexpr (Atomic) {
        atomic_combine<kForce>(&accum[dest], value, [](V a, V b) {
          return combine_scalar<P::kCombine>(a, b);
        });
      } else {
        const V combined = combine_scalar<P::kCombine>(accum[dest], value);
        if (kForce || combined != accum[dest]) accum[dest] = combined;
      }
    });
  }

  /// Gated traditional: the candidate-bitmap test runs before the
  /// per-vector atomic combine, so provably inactive vectors cost one
  /// bit test and no shared-memory traffic. Values are unchanged — a
  /// skipped vector would have combined exactly the identity.
  template <bool Atomic>
  void run_traditional_gated(const P& prog, const VectorSparseGraph& graph,
                             std::span<V> accum, const DenseFrontier* frontier,
                             ThreadPool& pool, std::uint64_t chunk) {
    const std::uint64_t* candidates = candidates_.data();
    parallel_for_chunks(
        pool, graph.num_vectors(), chunk,
        [&](unsigned tid, const Chunk& c) {
          std::uint64_t skipped = 0;
          for (std::uint64_t i = c.begin; i < c.end; ++i) {
            if (!detail::candidate_vector(candidates, i)) {
              ++skipped;
              continue;
            }
            detail::prefetch_ahead(prog, graph.vectors().data(), i, c.end,
                                   prefetch_distance_);
            auto [dest, value] = detail::process_vector_range<P, Vectorized>(
                prog, graph, frontier, i, i + 1, [&](VertexId, V) {});
            if (dest == kInvalidVertex) continue;
            constexpr bool kForce = program_force_writes<P>();
            if constexpr (Atomic) {
              atomic_combine<kForce>(&accum[dest], value, [](V a, V b) {
                return combine_scalar<P::kCombine>(a, b);
              });
            } else {
              const V combined =
                  combine_scalar<P::kCombine>(accum[dest], value);
              if (kForce || combined != accum[dest]) accum[dest] = combined;
            }
          }
          skipped_.local(tid) += skipped;
        },
        telemetry_, "pull_chunk");
  }

  /// Gated scheduler-aware: chunks of the edge-vector array are
  /// handed out dynamically exactly as in the ungated runner, but each
  /// chunk walks the candidate bitmap word-by-word instead of visiting
  /// every index. The chunk protocol is unchanged: interior dest
  /// changes store once with a plain write, and the trailing
  /// (dest, partial) pair goes to the chunk's private merge-buffer
  /// slot. A fully skipped chunk deposits nothing.
  void run_scheduler_aware_gated(const P& prog,
                                 const VectorSparseGraph& graph,
                                 std::span<V> accum,
                                 const DenseFrontier* frontier,
                                 ThreadPool& pool, std::uint64_t chunk,
                                 MergeBuffer<V>& merge_buffer) {
    const std::uint64_t n = graph.num_vectors();
    merge_buffer.resize(bits::ceil_div(n, chunk));
    const std::uint64_t* candidates = candidates_.data();
    parallel_for_chunks(
        pool, n, chunk,
        [&](unsigned tid, const Chunk& c) {
          std::uint64_t skipped = 0;
          auto [dest, value] =
              detail::process_vector_range_gated<P, Vectorized>(
                  prog, graph, frontier, candidates, c.begin, c.end,
                  prefetch_distance_, skipped,
                  [&](VertexId d, V v) { accum[d] = v; });
          if (dest != kInvalidVertex) merge_buffer.deposit(c.id, dest, value);
          skipped_.local(tid) += skipped;
        },
        telemetry_, "pull_chunk");

    fold_merge_buffer(accum, merge_buffer);
  }

  void run_scheduler_aware(const P& prog, const VectorSparseGraph& graph,
                           std::span<V> accum, const DenseFrontier* frontier,
                           ThreadPool& pool, std::uint64_t chunk,
                           MergeBuffer<V>& merge_buffer) {
    const std::uint64_t n = graph.num_vectors();
    merge_buffer.resize(bits::ceil_div(n, chunk));

    struct Body {
      const P& prog;
      const VectorSparseGraph& graph;
      std::span<V> accum;
      const DenseFrontier* frontier;
      MergeBuffer<V>& merge_buffer;
      unsigned prefetch = 0;

      VertexId prev = kInvalidVertex;
      V acc{};
#if defined(GRAZELLE_HAVE_AVX2)
      typename detail::VecOf<V>::type vacc{};
#endif
      bool skip_current = false;
      std::uint64_t chunk_end = 0;

      void start_chunk(const Chunk& c) {
        prev = kInvalidVertex;
        chunk_end = c.end;
        reset_acc();
      }

      void iteration(std::uint64_t i) {
        detail::prefetch_ahead(prog, graph.vectors().data(), i, chunk_end,
                               prefetch);
        const EdgeVector& ev = graph.vectors()[i];
        const VertexId dest = ev.top_level();
        if (dest != prev) {
          if (prev != kInvalidVertex) {
            // Listing 4: direct, synchronization-free store — this
            // thread holds the final in-edge vectors of `prev`.
            accum[prev] = take_acc();
          }
          prev = dest;
          if constexpr (P::kUsesConvergedSet) {
            skip_current = prog.skip_destination(dest);
          }
        }
        if constexpr (P::kUsesConvergedSet) {
          if (skip_current) return;
        }
        const WeightVector* wv =
            graph.weights().empty() ? nullptr : &graph.weights()[i];
        if constexpr (Vectorized) {
#if defined(GRAZELLE_HAVE_AVX2)
          detail::accumulate_vector_simd(prog, ev, wv, frontier, vacc);
#endif
        } else {
          detail::accumulate_vector_scalar(prog, ev, wv, frontier, acc);
        }
      }

      void finish_chunk(const Chunk& c) {
        // Listing 5: the chunk's trailing partial goes to the chunk's
        // private merge-buffer slot; another chunk may continue this
        // destination.
        if (prev != kInvalidVertex) {
          merge_buffer.deposit(c.id, prev, take_acc());
        }
      }

      void reset_acc() {
        if constexpr (Vectorized) {
#if defined(GRAZELLE_HAVE_AVX2)
          vacc = simd::splat(prog.identity());
#endif
        } else {
          acc = prog.identity();
        }
      }

      V take_acc() {
        if constexpr (Vectorized) {
#if defined(GRAZELLE_HAVE_AVX2)
          const V v = simd::reduce<P::kCombine>(vacc);
          vacc = simd::splat(prog.identity());
          return v;
#else
          return prog.identity();
#endif
        } else {
          const V v = acc;
          acc = prog.identity();
          return v;
        }
      }
    };

    // Wraps the working body, accumulating the span from first chunk
    // claimed to last chunk finished into a per-thread busy slot
    // (Figure 5b's Idle = wall - busy).
    struct TimedBody {
      Body body;
      double* busy_slot;
      WallTimer timer{};
      bool started = false;

      void start_chunk(const Chunk& c) {
        if (!started) {
          timer.restart();
          started = true;
        }
        body.start_chunk(c);
      }
      void iteration(std::uint64_t i) { body.iteration(i); }
      void finish_chunk(const Chunk& c) {
        body.finish_chunk(c);
        *busy_slot = timer.seconds();
      }
    };

    if (busy_.size() < pool.size()) {
      busy_ = ReductionArray<double>(pool.size(), 0.0);
    }
    busy_.reset(0.0);
    WallTimer phase_timer;

    parallel_for_scheduler_aware(
        pool, n, chunk,
        [&, this](unsigned tid) {
          return TimedBody{Body{prog, graph, accum, frontier, merge_buffer,
                                prefetch_distance_},
                           &busy_.local(tid)};
        },
        telemetry_, "pull_chunk");

    const double wall = phase_timer.seconds();
    const double busy =
        busy_.combine(0.0, [](double a, double b) { return a + b; });
    last_idle_seconds_ =
        std::max(0.0, static_cast<double>(pool.size()) * wall - busy);

    fold_merge_buffer(accum, merge_buffer);
  }

  /// Listing 6: single-threaded fold of the per-chunk trailing
  /// partials into the shared accumulators, timed for Figure 5b's
  /// "Merge" bucket and (when a sink is attached) spanned + counted.
  void fold_merge_buffer(std::span<V> accum, MergeBuffer<V>& merge_buffer) {
    if (telemetry_ != nullptr) {
      telemetry_->count(0, telemetry::Counter::kMergeFolds,
                        merge_buffer.used_count());
    }
    telemetry::ScopedSpan span(telemetry_, 0, "merge_fold");
    WallTimer merge_timer;
    merge_buffer.merge([&](VertexId d, V v) {
      accum[d] = combine_scalar<P::kCombine>(accum[d], v);
    });
    last_merge_seconds_ = merge_timer.seconds();
    merge_buffer.rearm();
  }

  // ---- Cache-blocked execution (DESIGN.md §10) -----------------------
  //
  // Blocking reorders only the *interleaving across destinations*, never
  // the per-destination work: for each destination the edge vectors are
  // still visited in ascending index order (a destination's segments
  // across blocks tile its range in ascending order), and the SIMD
  // 4-lane accumulator is parked in scratch *unreduced* between blocks,
  // so lane packing and the final horizontal reduction are exactly the
  // unblocked kernel's. That, plus an unchanged chunk flush/deposit
  // protocol, is what makes blocked runs bit-identical.

  /// Per-destination inter-block accumulator: the full 4-lane vector
  /// for the AVX2 kernel (store/reload of a Vec is bitwise-preserving;
  /// reducing per block would reassociate the combine), the scalar
  /// Value otherwise.
#if defined(GRAZELLE_HAVE_AVX2)
  using BlockAcc =
      std::conditional_t<Vectorized, typename detail::VecOf<V>::type, V>;
#else
  using BlockAcc = V;
#endif

  [[nodiscard]] static BlockAcc block_identity(const P& prog) {
#if defined(GRAZELLE_HAVE_AVX2)
    if constexpr (Vectorized) {
      return simd::splat(prog.identity());
    } else {
      return prog.identity();
    }
#else
    return prog.identity();
#endif
  }

  [[nodiscard]] static V block_reduce(const BlockAcc& acc) {
#if defined(GRAZELLE_HAVE_AVX2)
    if constexpr (Vectorized) {
      return simd::reduce<P::kCombine>(acc);
    } else {
      return acc;
    }
#else
    return acc;
#endif
  }

  /// One edge vector into a parked accumulator — the same kernel the
  /// unblocked walkers run, with the gated walkers' summary-pretested
  /// lane test when `Gated`.
  template <bool Gated>
  static void block_accumulate(const P& prog, const EdgeVector& ev,
                               const WeightVector* wv,
                               const DenseFrontier* frontier,
                               BlockAcc& acc) {
#if defined(GRAZELLE_HAVE_AVX2)
    if constexpr (Vectorized) {
      detail::accumulate_vector_simd<P, Gated>(prog, ev, wv, frontier, acc);
    } else {
      detail::accumulate_vector_scalar<P, Gated>(prog, ev, wv, frontier,
                                                 acc);
    }
#else
    detail::accumulate_vector_scalar<P, Gated>(prog, ev, wv, frontier, acc);
#endif
  }

  [[nodiscard]] AlignedBuffer<BlockAcc>& block_scratch(unsigned tid,
                                                       std::uint64_t count) {
    AlignedBuffer<BlockAcc>& buf = block_scratch_[tid];
    if (buf.size() < count) buf.reset(count);
    return buf;
  }

  /// Compact per-chunk descriptor of one vector-owning destination.
  /// The block-major walk revisits every destination once per block;
  /// streaming this list instead of re-reading the chunk's whole
  /// VertexVectorRange span num_blocks times keeps the revisit traffic
  /// proportional to destinations that actually own vectors and drops
  /// the zero-degree skip branch from the per-block loops.
  /// 16 bytes so the num_blocks re-streams stay cheap. `slot` being
  /// uint32 bounds one chunk to 2^32 destinations — far beyond any
  /// graph this engine can hold (the vertex index alone would be
  /// 64 GiB).
  struct BlockDest {
    std::uint64_t first_vector;
    std::uint32_t slot;  ///< scratch slot j; dest = d_first + slot
    std::uint32_t vector_count;
  };

  [[nodiscard]] AlignedBuffer<BlockDest>& block_dest_scratch(
      unsigned tid, std::uint64_t count) {
    AlignedBuffer<BlockDest>& buf = block_dests_[tid];
    if (buf.size() < count) buf.reset(count);
    return buf;
  }

  /// One pass over [d_first, d_first + count) gathering the vector-
  /// owning destinations the traditional blocked walk must revisit.
  /// Converged destinations stay in the list — the per-vector publish
  /// contract (process_vector_range's skip plus the force-writes store
  /// policy) decides what happens to them, exactly as in the unblocked
  /// traditional walk. (The scratch-accumulator walker filters them at
  /// its own compaction pass instead.)
  std::uint64_t compact_block_dests(std::span<const VertexVectorRange> index,
                                    VertexId d_first, std::uint64_t count,
                                    AlignedBuffer<BlockDest>& out) {
    std::uint64_t live = 0;
    for (std::uint64_t j = 0; j < count; ++j) {
      const VertexVectorRange& r = index[d_first + static_cast<VertexId>(j)];
      if (r.vector_count == 0) continue;
      out[live++] = BlockDest{r.first_vector, static_cast<std::uint32_t>(j),
                              r.vector_count};
    }
    return live;
  }

  /// Block-major walk of edge vectors [vbegin, vend): for each source
  /// block, each destination's segment inside this range is
  /// accumulated into that destination's parked accumulator; after the
  /// last block, every vector-owning destination except the trailing
  /// one is flushed (ascending — the same set and values the unblocked
  /// walk flushes, destinations whose vectors were all gated away
  /// flushing the identity the caller's accumulator already holds) and
  /// the trailing (dest, partial) pair is returned for the caller's
  /// chunk protocol. `skipped` accumulates gated-away vectors.
  template <bool Gated, typename FlushFn>
  std::pair<VertexId, V> process_chunk_blocked(
      const P& prog, const VectorSparseGraph& graph, const BlockIndex& blocks,
      const DenseFrontier* frontier, std::uint64_t vbegin, std::uint64_t vend,
      unsigned tid, std::uint64_t& skipped, FlushFn&& flush) {
    if (vbegin >= vend) return {kInvalidVertex, prog.identity()};
    const std::span<const VertexVectorRange> index = graph.index();
    const std::span<const EdgeVector> vectors = graph.vectors();
    const std::span<const WeightVector> weights = graph.weights();
    const VertexId d_first = detail::dest_of_vector(index, vbegin);
    const VertexId d_last = detail::dest_of_vector(index, vend - 1);
    const std::uint64_t count = d_last - d_first + 1;

    AlignedBuffer<BlockAcc>& scratch = block_scratch(tid, count);
    AlignedBuffer<BlockDest>& live_dests = block_dest_scratch(tid, count);

    // Single pre-pass over the chunk's destinations: park identity for
    // every vector-owning slot (zero-degree slots are never read — the
    // flush protocol skips them) and compact the destinations the
    // block-major walk must revisit. Converged destinations keep their
    // identity scratch but drop out of the revisit list, so the flush
    // emits identity for them exactly as the unblocked walk does.
    std::uint64_t live = 0;
    for (std::uint64_t j = 0; j < count; ++j) {
      const VertexId d = d_first + static_cast<VertexId>(j);
      const VertexVectorRange& r = index[d];
      if (r.vector_count == 0) continue;
      scratch[j] = block_identity(prog);
      if constexpr (P::kUsesConvergedSet) {
        if (prog.skip_destination(d)) continue;
      }
      live_dests[live++] =
          BlockDest{r.first_vector, static_cast<std::uint32_t>(j),
                    r.vector_count};
    }

    [[maybe_unused]] const std::uint64_t* candidates = candidates_.data();
    const std::uint32_t nb = blocks.num_blocks();
    std::uint64_t executed = 0;
    for (std::uint32_t b = 0; b < nb; ++b) {
      const std::uint64_t t0 =
          telemetry_ != nullptr ? telemetry_->now_us() : 0;
      bool touched = false;
      for (std::uint64_t k = 0; k < live; ++k) {
        const BlockDest& e = live_dests[k];
        const VertexId d = d_first + static_cast<VertexId>(e.slot);
        const std::uint64_t lo =
            std::max(vbegin,
                     e.first_vector + blocks.split(d, b, e.vector_count));
        const std::uint64_t hi =
            std::min(vend,
                     e.first_vector + blocks.split(d, b + 1, e.vector_count));
        if (lo >= hi) continue;
        touched = true;
        BlockAcc acc = scratch[e.slot];
        for (std::uint64_t i = lo; i < hi; ++i) {
          if constexpr (Gated) {
            if (!detail::candidate_vector(candidates, i)) {
              ++skipped;
              continue;
            }
          }
          detail::prefetch_ahead(prog, vectors.data(), i, hi,
                                 prefetch_distance_);
          const WeightVector* wv = weights.empty() ? nullptr : &weights[i];
          block_accumulate<Gated>(prog, vectors[i], wv, frontier, acc);
        }
        scratch[e.slot] = acc;
      }
      if (touched) {
        ++executed;
        if (telemetry_ != nullptr) {
          telemetry_->record(tid, "pull_block", t0,
                             telemetry_->now_us() - t0, "block", b);
        }
      }
    }
    blocks_executed_.local(tid) += executed;
    if (executed != 0) block_switches_.local(tid) += executed - 1;

    if constexpr (P::kUsesConvergedSet) {
      // Converged destinations are absent from the revisit list but
      // must still flush identity, so walk the index once more.
      for (std::uint64_t j = 0; j + 1 < count; ++j) {
        const VertexId d = d_first + static_cast<VertexId>(j);
        if (index[d].vector_count == 0) continue;
        flush(d, block_reduce(scratch[j]));
      }
    } else {
      // The revisit list IS the flushable set (ascending by slot);
      // skip the trailing destination, which is returned instead.
      for (std::uint64_t k = 0; k < live; ++k) {
        const std::uint64_t j = live_dests[k].slot;
        if (j + 1 >= count) break;
        flush(d_first + static_cast<VertexId>(j), block_reduce(scratch[j]));
      }
    }
    return {d_last, block_reduce(scratch[count - 1])};
  }

  template <bool Gated>
  void run_blocked(const P& prog, const VectorSparseGraph& graph,
                   const BlockIndex& blocks, std::span<V> accum,
                   const DenseFrontier* frontier, ThreadPool& pool,
                   PullParallelism mode, std::uint64_t chunk,
                   MergeBuffer<V>& merge_buffer) {
    switch (mode) {
      case PullParallelism::kSequential: {
        std::uint64_t skipped = 0;
        auto [dest, value] = process_chunk_blocked<Gated>(
            prog, graph, blocks, frontier, 0, graph.num_vectors(), 0, skipped,
            [&](VertexId d, V v) { accum[d] = v; });
        if (dest != kInvalidVertex) accum[dest] = value;
        skipped_.local(0) += skipped;
        break;
      }
      case PullParallelism::kVertexParallel:
        run_vertex_parallel_blocked<Gated>(prog, graph, blocks, accum,
                                           frontier, pool);
        break;
      case PullParallelism::kTraditional:
        run_traditional_blocked<true, Gated>(prog, graph, blocks, accum,
                                             frontier, pool, chunk);
        break;
      case PullParallelism::kTraditionalNoAtomic:
        run_traditional_blocked<false, Gated>(prog, graph, blocks, accum,
                                              frontier, pool, chunk);
        break;
      case PullParallelism::kSchedulerAware:
        run_scheduler_aware_blocked<Gated>(prog, graph, blocks, accum,
                                           frontier, pool, chunk,
                                           merge_buffer);
        break;
    }
  }

  /// Vertex-parallel blocked: chunks of 1024 destinations, each walked
  /// block-major. Chunks align to destination boundaries, so the
  /// trailing destination is wholly owned and stored directly.
  template <bool Gated>
  void run_vertex_parallel_blocked(const P& prog,
                                   const VectorSparseGraph& graph,
                                   const BlockIndex& blocks,
                                   std::span<V> accum,
                                   const DenseFrontier* frontier,
                                   ThreadPool& pool) {
    const std::span<const VertexVectorRange> index = graph.index();
    const std::uint64_t n = graph.num_vectors();
    const std::uint64_t v = graph.num_vertices();
    parallel_for_chunks(
        pool, v, 1024,
        [&](unsigned tid, const Chunk& c) {
          const std::uint64_t vec_begin = index[c.begin].first_vector;
          const std::uint64_t vec_end =
              c.end < v ? index[c.end].first_vector : n;
          std::uint64_t skipped = 0;
          auto [dest, value] = process_chunk_blocked<Gated>(
              prog, graph, blocks, frontier, vec_begin, vec_end, tid, skipped,
              [&](VertexId d, V val) { accum[d] = val; });
          if (dest != kInvalidVertex) accum[dest] = value;
          skipped_.local(tid) += skipped;
        },
        telemetry_, "pull_chunk");
  }

  /// Traditional blocked: the per-vector publish-immediately contract
  /// is kept (one shared-memory combine per vector), only the visit
  /// order inside each chunk becomes block-major. Per destination the
  /// combines still land in ascending vector order, so the nonatomic
  /// variant remains bit-identical to its unblocked run when
  /// uncontended.
  template <bool Atomic, bool Gated>
  void run_traditional_blocked(const P& prog, const VectorSparseGraph& graph,
                               const BlockIndex& blocks, std::span<V> accum,
                               const DenseFrontier* frontier,
                               ThreadPool& pool, std::uint64_t chunk) {
    const std::span<const VertexVectorRange> index = graph.index();
    const std::span<const EdgeVector> vectors = graph.vectors();
    [[maybe_unused]] const std::uint64_t* candidates = candidates_.data();
    const std::uint32_t nb = blocks.num_blocks();
    parallel_for_chunks(
        pool, graph.num_vectors(), chunk,
        [&](unsigned tid, const Chunk& c) {
          std::uint64_t skipped = 0;
          const VertexId d_first = detail::dest_of_vector(index, c.begin);
          const VertexId d_last = detail::dest_of_vector(index, c.end - 1);
          AlignedBuffer<BlockDest>& live_dests =
              block_dest_scratch(tid, d_last - d_first + 1);
          const std::uint64_t live = compact_block_dests(
              index, d_first, d_last - d_first + 1, live_dests);
          std::uint64_t executed = 0;
          for (std::uint32_t b = 0; b < nb; ++b) {
            bool touched = false;
            for (std::uint64_t k = 0; k < live; ++k) {
              const BlockDest& e = live_dests[k];
              const VertexId d = d_first + static_cast<VertexId>(e.slot);
              const std::uint64_t lo = std::max(
                  c.begin, e.first_vector + blocks.split(d, b, e.vector_count));
              const std::uint64_t hi =
                  std::min(c.end, e.first_vector +
                                      blocks.split(d, b + 1, e.vector_count));
              if (lo >= hi) continue;
              touched = true;
              for (std::uint64_t i = lo; i < hi; ++i) {
                if constexpr (Gated) {
                  if (!detail::candidate_vector(candidates, i)) {
                    ++skipped;
                    continue;
                  }
                }
                detail::prefetch_ahead(prog, vectors.data(), i, hi,
                                       prefetch_distance_);
                auto [dest, value] =
                    detail::process_vector_range<P, Vectorized>(
                        prog, graph, frontier, i, i + 1, [&](VertexId, V) {});
                if (dest == kInvalidVertex) continue;
                constexpr bool kForce = program_force_writes<P>();
                if constexpr (Atomic) {
                  atomic_combine<kForce>(&accum[dest], value, [](V a, V b) {
                    return combine_scalar<P::kCombine>(a, b);
                  });
                } else {
                  const V combined =
                      combine_scalar<P::kCombine>(accum[dest], value);
                  if (kForce || combined != accum[dest]) accum[dest] = combined;
                }
              }
            }
            if (touched) ++executed;
          }
          blocks_executed_.local(tid) += executed;
          if (executed != 0) block_switches_.local(tid) += executed - 1;
          skipped_.local(tid) += skipped;
        },
        telemetry_, "pull_chunk");
  }

  /// Scheduler-aware blocked: chunk claim order, interior direct
  /// stores, trailing merge-buffer deposits and the sequential fold are
  /// all exactly the unblocked protocol — only the walk inside each
  /// chunk is block-major.
  template <bool Gated>
  void run_scheduler_aware_blocked(const P& prog,
                                   const VectorSparseGraph& graph,
                                   const BlockIndex& blocks,
                                   std::span<V> accum,
                                   const DenseFrontier* frontier,
                                   ThreadPool& pool, std::uint64_t chunk,
                                   MergeBuffer<V>& merge_buffer) {
    const std::uint64_t n = graph.num_vectors();
    merge_buffer.resize(bits::ceil_div(n, chunk));
    parallel_for_chunks(
        pool, n, chunk,
        [&](unsigned tid, const Chunk& c) {
          std::uint64_t skipped = 0;
          auto [dest, value] = process_chunk_blocked<Gated>(
              prog, graph, blocks, frontier, c.begin, c.end, tid, skipped,
              [&](VertexId d, V val) { accum[d] = val; });
          if (dest != kInvalidVertex) merge_buffer.deposit(c.id, dest, value);
          skipped_.local(tid) += skipped;
        },
        telemetry_, "pull_chunk");

    fold_merge_buffer(accum, merge_buffer);
  }

  double last_merge_seconds_ = 0.0;
  double last_idle_seconds_ = 0.0;
  std::uint64_t last_vectors_skipped_ = 0;
  std::uint64_t last_blocks_executed_ = 0;
  std::uint64_t last_block_switches_ = 0;
  unsigned prefetch_distance_ = 0;  // valid for one run() only
  telemetry::Telemetry* telemetry_ = nullptr;  // valid for one run() only
  ReductionArray<double> busy_{1, 0.0};
  ReductionArray<std::uint64_t> skipped_{1, 0};
  ReductionArray<std::uint64_t> blocks_executed_{1, 0};
  ReductionArray<std::uint64_t> block_switches_{1, 0};
  AlignedBuffer<std::uint64_t> candidates_;
  std::vector<AlignedBuffer<BlockAcc>> block_scratch_;
  std::vector<AlignedBuffer<BlockDest>> block_dests_;
};

namespace detail {

/// Half `h` of a fused vector is occupied iff its lane 0 is valid —
/// valid lanes form a prefix, so an all-invalid padding half is
/// recognized from one lane.
[[nodiscard]] inline bool half_occupied(const EdgeVector& h) noexcept {
  return vsenc::lane_valid(h.lane[0]);
}

/// Distance-ahead prefetch for the fused walk — same policy as
/// prefetch_ahead, with the distance expressed in fused (64-byte)
/// vectors so the byte horizon matches the 4-lane walk's.
template <GraphProgram P>
inline void prefetch_ahead512(const P& prog, const EdgeVector512* vectors,
                              std::uint64_t i, std::uint64_t end,
                              unsigned dist) {
  if (dist == 0) return;
  if (i + dist < end) platform::prefetch_read(vectors + i + dist);
  if constexpr (!P::kMessageIsSourceId) {
    const std::uint64_t ahead = i + dist / 2;
    if (ahead > i && ahead < end) {
      const auto* messages = prog.message_array();
      for (unsigned h = 0; h < 2; ++h) {
        const EdgeVector& ev = vectors[ahead].half[h];
        for (unsigned k = 0; k < kEdgeVectorLanes; ++k) {
          if (ev.valid(k)) platform::prefetch_read(messages + ev.neighbor(k));
        }
      }
    }
  }
}

#if defined(GRAZELLE_HAVE_AVX512) && defined(GRAZELLE_HAVE_AVX2)

/// Fused accumulation of one EdgeVector512 (both rows of a paired
/// slice) into an 8-lane accumulator. `allowed` carries 0x0F/0xF0
/// nibbles for rows that may contribute (a converged row's nibble is
/// cleared). The combine mask is per-half occupancy, not the frontier
/// mask: the AVX2 kernel combines all four lanes of every occupied
/// vector with masked-out lanes blended to identity, and this kernel
/// reproduces that lane-for-lane so per-half reductions stay bitwise
/// identical to the 4-lane walk.
template <GraphProgram P>
inline void accumulate_fused(
    const P& prog, const EdgeVector512& fv, const WeightVector512* wv,
    const DenseFrontier* frontier, __mmask8 allowed,
    typename simd512::Vec8Of<typename P::Value>::type& vacc) {
  using V = typename P::Value;
  using Vec8 = typename simd512::Vec8Of<V>::type;
  const simd512::Vec8U64 lanes = simd512::load_lanes(fv);
  const __mmask8 valid =
      static_cast<__mmask8>(simd512::valid_mask(lanes) & allowed);
  const __mmask8 occ = simd512::half_occupancy_mask(valid);
  if (occ == 0) return;
  const simd512::Vec8U64 srcs = simd512::neighbor_ids(lanes);
  __mmask8 active = valid;
  if constexpr (P::kUsesFrontier) {
    active = simd512::frontier_mask(frontier->words(), srcs, active);
  }
  const Vec8 identity = simd512::splat8(prog.identity());
  Vec8 msgs;
  if constexpr (P::kMessageIsSourceId) {
    static_assert(std::is_same_v<V, std::uint64_t>);
    msgs = simd512::blend(identity, srcs, active);
  } else {
    msgs = simd512::gather_masked(prog.message_array(), srcs, active,
                                  identity);
    if constexpr (P::kWeight != simd::WeightOp::kNone) {
      static_assert(std::is_same_v<V, double>,
                    "weighted programs aggregate doubles");
      const simd512::Vec8F64 w = simd512::load_weights(*wv);
      simd512::Vec8F64 weighted;
      if constexpr (P::kWeight == simd::WeightOp::kAdd) {
        weighted = simd512::add(msgs, w);
      } else {
        weighted = simd512::mul(msgs, w);
      }
      msgs = simd512::blend(identity, weighted, active);
    }
  }
  vacc = simd512::combine_masked<P::kCombine>(vacc, msgs, occ);
}

#endif  // GRAZELLE_HAVE_AVX512 && GRAZELLE_HAVE_AVX2

}  // namespace detail

/// Edge-Pull phase runner over the fused 8-lane Vsd512 layout
/// (DESIGN.md §12). Mirrors PullEdgePhase mode for mode; per-
/// destination results are bitwise identical to the 4-lane walk
/// because every row is still a 4-lane accumulator ladder — the fused
/// kernel just runs two of them side by side and flushes through the
/// same 256-bit horizontal reduce.
///
/// Scheduler-aware chunking snaps chunk boundaries forward to slice
/// ends when they fall inside a *paired* slice (so both rows stay in
/// one chunk and get plain stores); a *solo* (hub) slice may split at
/// fused-vector granularity, each non-final segment depositing its
/// running partial into the chunk's private merge-buffer slot —
/// the write-once protocol is unchanged. Cache blocking reuses the
/// graph's 4-lane BlockIndex: per-row source-range splits walk the
/// identical per-destination vector lists block-major with parked
/// unreduced accumulators. Traditional mode runs unblocked (its
/// publish-immediately contract has nothing to park).
template <GraphProgram P, bool Vectorized>
class Pull512EdgePhase {
 public:
  using V = typename P::Value;

  /// Runs one pull Edge phase over the fused structure. Contract and
  /// knobs are PullEdgePhase::run's; `cfg.chunk_vectors` is still in
  /// 4-lane edge vectors (one fused vector carries two). Skip/visit
  /// telemetry is reported in 4-lane vector units (two per fused
  /// vector) so gated runs stay comparable across lane widths.
  void run(const P& prog, const Vsd512Graph& graph, std::span<V> accum,
           const DenseFrontier* frontier, ThreadPool& pool,
           const PullRunConfig& cfg, MergeBuffer<V>& merge_buffer,
           telemetry::Telemetry* t = nullptr) {
    last_vectors_skipped_ = 0;
    last_blocks_executed_ = 0;
    last_block_switches_ = 0;
    last_merge_seconds_ = 0.0;
    last_idle_seconds_ = 0.0;
    telemetry_ = t;
    prefetch_distance_ = cfg.prefetch_distance == 0
                             ? 0u
                             : std::max(1u, cfg.prefetch_distance / 2);
    use_fused_ = false;
    if constexpr (Vectorized) use_fused_ = wide_kernels_available();
    const std::uint64_t nf = graph.num_fused();
    if (nf == 0) return;
    const std::uint64_t chunk =
        cfg.chunk_vectors != 0
            ? std::max<std::uint64_t>(
                  1, bits::ceil_div(cfg.chunk_vectors, std::uint64_t{2}))
            : std::max<std::uint64_t>(
                  1, bits::ceil_div(nf, std::uint64_t{32} * pool.size()));

    if (skipped_.size() < pool.size()) {
      skipped_ = ReductionArray<std::uint64_t>(pool.size(), 0);
    }
    skipped_.reset(0);

    bool gated = false;
    if constexpr (P::kUsesFrontier) {
      gated = cfg.gated && frontier != nullptr;
    }
    if (gated) {
      {
        telemetry::ScopedSpan span(t, 0, "gate_build");
        build_candidates(graph, frontier);
      }
      telemetry::count(t, 0, telemetry::Counter::kGateBuilds, 1);
    }

    const bool blocked = cfg.blocks != nullptr && !cfg.blocks->trivial();
    if (blocked) {
      if (blocks_executed_.size() < pool.size()) {
        blocks_executed_ = ReductionArray<std::uint64_t>(pool.size(), 0);
        block_switches_ = ReductionArray<std::uint64_t>(pool.size(), 0);
      }
      blocks_executed_.reset(0);
      block_switches_.reset(0);
      if (scratch512_.size() < pool.size()) {
        scratch512_.resize(pool.size());
        rows512_.resize(pool.size());
      }
      bool dispatched = false;
      if constexpr (P::kUsesFrontier) {
        if (gated) {
          run_blocked512<true>(prog, graph, *cfg.blocks, accum, frontier,
                               pool, cfg.mode, chunk, merge_buffer);
          dispatched = true;
        }
      }
      if (!dispatched) {
        run_blocked512<false>(prog, graph, *cfg.blocks, accum, frontier,
                              pool, cfg.mode, chunk, merge_buffer);
      }
      last_blocks_executed_ = blocks_executed_.combine(
          std::uint64_t{0},
          [](std::uint64_t a, std::uint64_t b) { return a + b; });
      last_block_switches_ = block_switches_.combine(
          std::uint64_t{0},
          [](std::uint64_t a, std::uint64_t b) { return a + b; });
    } else if (gated) {
      if constexpr (P::kUsesFrontier) {
        dispatch_unblocked<true>(prog, graph, accum, frontier, pool,
                                 cfg.mode, chunk, merge_buffer);
      }
    } else {
      dispatch_unblocked<false>(prog, graph, accum, frontier, pool, cfg.mode,
                                chunk, merge_buffer);
    }

    const std::uint64_t halves = 2 * nf;
    if (gated) {
      last_vectors_skipped_ = skipped_.combine(
          std::uint64_t{0},
          [](std::uint64_t a, std::uint64_t b) { return a + b; });
    }
    if (t != nullptr) {
      if (gated) {
        const std::uint64_t visited =
            halves - std::min(halves, last_vectors_skipped_);
        t->count(0, telemetry::Counter::kVectorsSkipped,
                 last_vectors_skipped_);
        t->count(0, telemetry::Counter::kVectorsVisited, visited);
        t->count(0, telemetry::Counter::kEdgesTouched,
                 visited * kEdgeVectorLanes);
      } else {
        t->count(0, telemetry::Counter::kVectorsVisited, halves);
        t->count(0, telemetry::Counter::kEdgesTouched, graph.num_edges());
      }
      if (blocked) {
        t->count(0, telemetry::Counter::kBlocksExecuted,
                 last_blocks_executed_);
        t->count(0, telemetry::Counter::kBlockSwitches,
                 last_block_switches_);
      }
    }
  }

  [[nodiscard]] double last_merge_seconds() const noexcept {
    return last_merge_seconds_;
  }
  /// Always 0 for now: the fused scheduler-aware runner hands out its
  /// snapped chunk grid through the generic chunk scheduler, which has
  /// no per-thread busy probe.
  [[nodiscard]] double last_idle_seconds() const noexcept {
    return last_idle_seconds_;
  }
  /// 4-lane-equivalent vector units (two per fused vector).
  [[nodiscard]] std::uint64_t last_vectors_skipped() const noexcept {
    return last_vectors_skipped_;
  }
  [[nodiscard]] std::uint64_t last_blocks_executed() const noexcept {
    return last_blocks_executed_;
  }
  [[nodiscard]] std::uint64_t last_block_switches() const noexcept {
    return last_block_switches_;
  }

 private:
  /// Per-row running accumulator — the same type the 4-lane walk
  /// carries per destination, so parking/reloading it is bitwise
  /// preserving.
#if defined(GRAZELLE_HAVE_AVX2)
  using Acc =
      std::conditional_t<Vectorized, typename detail::VecOf<V>::type, V>;
#else
  using Acc = V;
#endif

  [[nodiscard]] static Acc acc_identity(const P& prog) {
#if defined(GRAZELLE_HAVE_AVX2)
    if constexpr (Vectorized) {
      return simd::splat(prog.identity());
    } else {
      return prog.identity();
    }
#else
    return prog.identity();
#endif
  }

  [[nodiscard]] static V acc_reduce(const Acc& acc) {
#if defined(GRAZELLE_HAVE_AVX2)
    if constexpr (Vectorized) {
      return simd::reduce<P::kCombine>(acc);
    } else {
      return acc;
    }
#else
    return acc;
#endif
  }

  template <bool Gated>
  static void acc_accumulate(const P& prog, const EdgeVector& ev,
                             const WeightVector* wv,
                             const DenseFrontier* frontier, Acc& acc) {
#if defined(GRAZELLE_HAVE_AVX2)
    if constexpr (Vectorized) {
      detail::accumulate_vector_simd<P, Gated>(prog, ev, wv, frontier, acc);
    } else {
      detail::accumulate_vector_scalar<P, Gated>(prog, ev, wv, frontier,
                                                 acc);
    }
#else
    detail::accumulate_vector_scalar<P, Gated>(prog, ev, wv, frontier, acc);
#endif
  }

  /// Candidate bitmap over *fused* vectors — same scatter as the
  /// 4-lane build_candidates, through Vsd512Graph's own incidence
  /// index. One fused bit covers both halves; a half whose own
  /// sources are all inactive may therefore still be walked, adding
  /// exactly the identity.
  void build_candidates(const Vsd512Graph& graph,
                        const DenseFrontier* frontier) {
    const std::uint64_t words =
        bits::ceil_div(graph.num_fused(), std::uint64_t{64});
    if (candidates_.size() < words) candidates_.reset(words);
    std::fill_n(candidates_.data(), words, std::uint64_t{0});
    const std::span<const EdgeIndex> offsets = graph.source_offsets();
    const std::span<const std::uint32_t> incident = graph.source_vectors();
    std::uint64_t* bits_out = candidates_.data();
    frontier->for_each([&](VertexId v) {
      const EdgeIndex hi = offsets[v + 1];
      for (EdgeIndex j = offsets[v]; j < hi; ++j) {
        const std::uint64_t i = incident[j];
        bits_out[i >> 6] |= std::uint64_t{1} << (i & 63);
      }
    });
  }

  /// Walks fused vectors [begin, end) of one solo (hub) slice,
  /// accumulating both halves — the row's 4-lane vectors in ascending
  /// order — into `acc`.
  template <bool Gated>
  void accumulate_solo_range(const P& prog, const Vsd512Graph& graph,
                             const DenseFrontier* frontier, EdgeIndex begin,
                             EdgeIndex end, std::uint64_t& skipped,
                             Acc& acc) {
    const std::span<const EdgeVector512> vectors = graph.vectors();
    const std::span<const WeightVector512> weights = graph.weights();
    [[maybe_unused]] const std::uint64_t* candidates = candidates_.data();
    for (EdgeIndex i = begin; i < end; ++i) {
      if constexpr (Gated) {
        if (!detail::candidate_vector(candidates, i)) {
          skipped += 2;
          continue;
        }
      }
      detail::prefetch_ahead512(prog, vectors.data(), i, end,
                                prefetch_distance_);
      const WeightVector512* wv = weights.empty() ? nullptr : &weights[i];
      const EdgeVector512& fv = vectors[i];
      for (unsigned h = 0; h < 2; ++h) {
        const EdgeVector& half = fv.half[h];
        // Occupied halves form a prefix of the row's layout.
        if (!detail::half_occupied(half)) break;
        acc_accumulate<Gated>(prog, half, wv ? &wv->half[h] : nullptr,
                              frontier, acc);
      }
    }
  }

  /// Accumulates fused vectors [begin, end) of one paired slice and
  /// reduces each row into out[0]/out[1]. Converged rows contribute
  /// identity. Takes the fused AVX-512 kernel when available,
  /// otherwise two per-half accumulator ladders — bitwise the same.
  template <bool Gated>
  void process_paired_slice(const P& prog, const Vsd512Graph& graph,
                            const DenseFrontier* frontier,
                            const Vsd512Slice& s, EdgeIndex begin,
                            EdgeIndex end, std::uint64_t& skipped,
                            V out[2]) {
    bool skip0 = false;
    bool skip1 = false;
    if constexpr (P::kUsesConvergedSet) {
      skip0 = prog.skip_destination(s.dest[0]);
      skip1 = prog.skip_destination(s.dest[1]);
    }
    const std::span<const EdgeVector512> vectors = graph.vectors();
    const std::span<const WeightVector512> weights = graph.weights();
    [[maybe_unused]] const std::uint64_t* candidates = candidates_.data();

#if defined(GRAZELLE_HAVE_AVX512) && defined(GRAZELLE_HAVE_AVX2)
    if constexpr (Vectorized) {
      if (use_fused_) {
        using Vec8 = typename simd512::Vec8Of<V>::type;
        Vec8 vacc = simd512::splat8(prog.identity());
        const __mmask8 allowed = static_cast<__mmask8>(
            (skip0 ? 0 : 0x0F) | (skip1 ? 0 : 0xF0));
        for (EdgeIndex i = begin; i < end; ++i) {
          if constexpr (Gated) {
            if (!detail::candidate_vector(candidates, i)) {
              skipped += 2;
              continue;
            }
          }
          detail::prefetch_ahead512(prog, vectors.data(), i, end,
                                    prefetch_distance_);
          const WeightVector512* wv =
              weights.empty() ? nullptr : &weights[i];
          detail::accumulate_fused(prog, vectors[i], wv, frontier, allowed,
                                   vacc);
        }
        out[0] = simd::reduce<P::kCombine>(simd512::half(vacc, 0));
        out[1] = simd::reduce<P::kCombine>(simd512::half(vacc, 1));
        return;
      }
    }
#endif
    Acc a0 = acc_identity(prog);
    Acc a1 = acc_identity(prog);
    for (EdgeIndex i = begin; i < end; ++i) {
      if constexpr (Gated) {
        if (!detail::candidate_vector(candidates, i)) {
          skipped += 2;
          continue;
        }
      }
      detail::prefetch_ahead512(prog, vectors.data(), i, end,
                                prefetch_distance_);
      const WeightVector512* wv = weights.empty() ? nullptr : &weights[i];
      const EdgeVector512& fv = vectors[i];
      if (!skip0 && detail::half_occupied(fv.half[0])) {
        acc_accumulate<Gated>(prog, fv.half[0], wv ? &wv->half[0] : nullptr,
                              frontier, a0);
      }
      if (!skip1 && detail::half_occupied(fv.half[1])) {
        acc_accumulate<Gated>(prog, fv.half[1], wv ? &wv->half[1] : nullptr,
                              frontier, a1);
      }
    }
    out[0] = acc_reduce(a0);
    out[1] = acc_reduce(a1);
  }

  /// Walks fused vectors [begin, end), slice by slice, flushing
  /// completed rows with `flush(dest, value)`. The range may begin
  /// and/or end mid-solo-slice (scheduler chunks split hub rows at
  /// fused granularity); a solo row *ending* inside the range flushes
  /// its final segment like any completed row, while a trailing
  /// partial (range ends before the row does) is returned as the
  /// (dest, partial) deposit pair — {kInvalidVertex, identity} when
  /// the range ends on a slice boundary. Paired slices are never
  /// split by the chunk grids that feed this walker.
  template <bool Gated, typename FlushFn>
  std::pair<VertexId, V> process_chunk512(const P& prog,
                                          const Vsd512Graph& graph,
                                          const DenseFrontier* frontier,
                                          EdgeIndex begin, EdgeIndex end,
                                          std::uint64_t& skipped,
                                          FlushFn&& flush) {
    if (begin >= end) return {kInvalidVertex, prog.identity()};
    const std::span<const Vsd512Slice> slices = graph.slices();
    const std::span<const EdgeIndex> offsets = graph.slice_offsets();
    std::uint64_t si = graph.slice_of(begin);
    EdgeIndex pos = begin;
    while (pos < end) {
      const Vsd512Slice& s = slices[si];
      const EdgeIndex se = offsets[si + 1];
      const EdgeIndex seg_end = std::min<EdgeIndex>(se, end);
      if (s.solo()) {
        bool skip = false;
        if constexpr (P::kUsesConvergedSet) {
          skip = prog.skip_destination(s.dest[0]);
        }
        Acc acc = acc_identity(prog);
        if (!skip) {
          accumulate_solo_range<Gated>(prog, graph, frontier, pos, seg_end,
                                       skipped, acc);
        }
        const V value = acc_reduce(acc);
        if (seg_end < se) return {s.dest[0], value};
        flush(s.dest[0], value);
      } else {
        V out[2];
        process_paired_slice<Gated>(prog, graph, frontier, s, pos, seg_end,
                                    skipped, out);
        flush(s.dest[0], out[0]);
        flush(s.dest[1], out[1]);
      }
      pos = seg_end;
      ++si;
    }
    return {kInvalidVertex, prog.identity()};
  }

  template <bool Gated>
  void dispatch_unblocked(const P& prog, const Vsd512Graph& graph,
                          std::span<V> accum, const DenseFrontier* frontier,
                          ThreadPool& pool, PullParallelism mode,
                          std::uint64_t chunk, MergeBuffer<V>& merge_buffer) {
    switch (mode) {
      case PullParallelism::kSequential: {
        std::uint64_t skipped = 0;
        process_chunk512<Gated>(prog, graph, frontier, 0, graph.num_fused(),
                                skipped,
                                [&](VertexId d, V v) { accum[d] = v; });
        skipped_.local(0) += skipped;
        break;
      }
      case PullParallelism::kVertexParallel:
        run_vertex_parallel512<Gated>(prog, graph, accum, frontier, pool);
        break;
      case PullParallelism::kTraditional:
        run_traditional512<true, Gated>(prog, graph, accum, frontier, pool,
                                        chunk);
        break;
      case PullParallelism::kTraditionalNoAtomic:
        run_traditional512<false, Gated>(prog, graph, accum, frontier, pool,
                                         chunk);
        break;
      case PullParallelism::kSchedulerAware:
        run_scheduler_aware512<Gated>(prog, graph, accum, frontier, pool,
                                      chunk, merge_buffer);
        break;
    }
  }

  /// Outer loop over slices: every row in a chunk is wholly owned, so
  /// all flushes are direct stores and no deposit can occur.
  template <bool Gated>
  void run_vertex_parallel512(const P& prog, const Vsd512Graph& graph,
                              std::span<V> accum,
                              const DenseFrontier* frontier,
                              ThreadPool& pool) {
    const std::span<const EdgeIndex> offsets = graph.slice_offsets();
    parallel_for_chunks(
        pool, graph.num_slices(), 512,
        [&](unsigned tid, const Chunk& c) {
          std::uint64_t skipped = 0;
          process_chunk512<Gated>(prog, graph, frontier, offsets[c.begin],
                                  offsets[c.end], skipped,
                                  [&](VertexId d, V v) { accum[d] = v; });
          skipped_.local(tid) += skipped;
        },
        telemetry_, "pull_chunk");
  }

  /// Traditional interface over the fused layout: each occupied half
  /// is one "iteration" — reduced on its own and published with one
  /// shared-memory combine, exactly the 4-lane per-vector contract
  /// (single-threaded runs therefore combine the same per-vector
  /// partials in the same ascending order).
  template <bool Atomic, bool Gated>
  void run_traditional512(const P& prog, const Vsd512Graph& graph,
                          std::span<V> accum, const DenseFrontier* frontier,
                          ThreadPool& pool, std::uint64_t chunk) {
    const std::span<const EdgeVector512> vectors = graph.vectors();
    const std::span<const WeightVector512> weights = graph.weights();
    const std::span<const Vsd512Slice> slices = graph.slices();
    const std::span<const EdgeIndex> offsets = graph.slice_offsets();
    [[maybe_unused]] const std::uint64_t* candidates = candidates_.data();
    parallel_for_chunks(
        pool, graph.num_fused(), chunk,
        [&](unsigned tid, const Chunk& c) {
          if (c.begin >= c.end) return;
          std::uint64_t skipped = 0;
          std::uint64_t si = graph.slice_of(c.begin);
          for (EdgeIndex i = c.begin; i < c.end; ++i) {
            while (offsets[si + 1] <= i) ++si;
            if constexpr (Gated) {
              if (!detail::candidate_vector(candidates, i)) {
                skipped += 2;
                continue;
              }
            }
            detail::prefetch_ahead512(prog, vectors.data(), i, c.end,
                                      prefetch_distance_);
            const Vsd512Slice& s = slices[si];
            const WeightVector512* wv =
                weights.empty() ? nullptr : &weights[i];
            for (unsigned h = 0; h < 2; ++h) {
              const EdgeVector& half = vectors[i].half[h];
              if (!detail::half_occupied(half)) continue;
              const VertexId dest = s.solo() ? s.dest[0] : s.dest[h];
              V value;
              bool skip = false;
              if constexpr (P::kUsesConvergedSet) {
                skip = prog.skip_destination(dest);
              }
              if (skip) {
                value = prog.identity();
              } else {
                Acc acc = acc_identity(prog);
                acc_accumulate<Gated>(prog, half,
                                      wv ? &wv->half[h] : nullptr, frontier,
                                      acc);
                value = acc_reduce(acc);
              }
              constexpr bool kForce = program_force_writes<P>();
              if constexpr (Atomic) {
                atomic_combine<kForce>(&accum[dest], value, [](V a, V b) {
                  return combine_scalar<P::kCombine>(a, b);
                });
              } else {
                const V combined =
                    combine_scalar<P::kCombine>(accum[dest], value);
                if (kForce || combined != accum[dest]) accum[dest] = combined;
              }
            }
          }
          skipped_.local(tid) += skipped;
        },
        telemetry_, "pull_chunk");
  }

  /// Builds the snapped chunk grid: boundaries that land inside a
  /// paired slice move forward to the slice end (both rows of a fused
  /// column must be walked by one chunk); solo (hub) slices may split
  /// at fused granularity, their partials going through the merge
  /// buffer. The blocked scheduler-aware runner walks this exact grid
  /// too, so its per-row segment grouping matches bitwise.
  void build_chunk_grid(const Vsd512Graph& graph, std::uint64_t chunk) {
    chunks_.clear();
    const std::span<const Vsd512Slice> slices = graph.slices();
    const std::span<const EdgeIndex> offsets = graph.slice_offsets();
    const EdgeIndex nf = graph.num_fused();
    EdgeIndex pos = 0;
    while (pos < nf) {
      EdgeIndex cut = std::min<EdgeIndex>(nf, pos + chunk);
      if (cut < nf) {
        const std::uint64_t si = graph.slice_of(cut);
        if (offsets[si] != cut && !slices[si].solo()) {
          cut = offsets[si + 1];
        }
      }
      chunks_.push_back({pos, cut});
      pos = cut;
    }
  }

  /// Scheduler-aware over the snapped grid: chunks are claimed
  /// dynamically by index, interior rows store directly, and only a
  /// chunk ending mid-hub-row deposits (at most once, into its own
  /// slot) — the fold then combines segments in chunk order, the same
  /// grouping structure as the 4-lane protocol.
  template <bool Gated>
  void run_scheduler_aware512(const P& prog, const Vsd512Graph& graph,
                              std::span<V> accum,
                              const DenseFrontier* frontier, ThreadPool& pool,
                              std::uint64_t chunk,
                              MergeBuffer<V>& merge_buffer) {
    build_chunk_grid(graph, chunk);
    merge_buffer.resize(chunks_.size());
    parallel_for_chunks(
        pool, chunks_.size(), 1,
        [&](unsigned tid, const Chunk& c) {
          std::uint64_t skipped = 0;
          for (std::uint64_t idx = c.begin; idx < c.end; ++idx) {
            auto [dest, value] = process_chunk512<Gated>(
                prog, graph, frontier, chunks_[idx].first,
                chunks_[idx].second, skipped,
                [&](VertexId d, V v) { accum[d] = v; });
            if (dest != kInvalidVertex) merge_buffer.deposit(idx, dest, value);
          }
          skipped_.local(tid) += skipped;
        },
        telemetry_, "pull_chunk");
    fold_merge_buffer(accum, merge_buffer);
  }

  void fold_merge_buffer(std::span<V> accum, MergeBuffer<V>& merge_buffer) {
    if (telemetry_ != nullptr) {
      telemetry_->count(0, telemetry::Counter::kMergeFolds,
                        merge_buffer.used_count());
    }
    telemetry::ScopedSpan span(telemetry_, 0, "merge_fold");
    WallTimer merge_timer;
    merge_buffer.merge([&](VertexId d, V v) {
      accum[d] = combine_scalar<P::kCombine>(accum[d], v);
    });
    last_merge_seconds_ = merge_timer.seconds();
    merge_buffer.rearm();
  }

  // ---- Cache-blocked execution over the fused layout -----------------

  /// One revisitable row of a blocked chunk. `half` 0/1 addresses a
  /// paired row's half; 2 marks a solo row (its 4-lane vectors lie
  /// sequentially through both halves). [jb, je) is the row-vector
  /// range the owning chunk covers — the full row except where a
  /// chunk boundary splits a solo row (or, in the traditional walk,
  /// any row). `trailing` marks a solo row that continues past the
  /// chunk: its partial goes through the merge buffer, never a store.
  struct Row512 {
    EdgeIndex first_fused;
    VertexId dest;
    std::uint32_t row_vectors;
    std::uint32_t jb;
    std::uint32_t je;
    std::uint32_t slot;
    std::uint8_t half;
    bool trailing;
  };

  [[nodiscard]] AlignedBuffer<Acc>& scratch512(unsigned tid,
                                               std::uint64_t count) {
    AlignedBuffer<Acc>& buf = scratch512_[tid];
    if (buf.size() < count) buf.reset(count);
    return buf;
  }

  /// Collects the rows intersecting fused range [fb, fe) into
  /// rows512_[tid], each with its row-vector range clipped to the
  /// chunk. Converged rows are kept with an empty range so the flush
  /// loop still writes their identity, exactly as unblocked does.
  /// Returns the slot count.
  std::uint32_t collect_rows512(const P& prog, const Vsd512Graph& graph,
                                EdgeIndex fb, EdgeIndex fe, unsigned tid) {
    const std::span<const Vsd512Slice> slices = graph.slices();
    const std::span<const EdgeIndex> offsets = graph.slice_offsets();
    std::vector<Row512>& rows = rows512_[tid];
    rows.clear();
    std::uint32_t slot = 0;
    for (std::uint64_t si = graph.slice_of(fb);
         si < graph.num_slices() && offsets[si] < fe; ++si) {
      const Vsd512Slice& s = slices[si];
      const EdgeIndex sb = offsets[si];
      const unsigned nrows = s.solo() ? 1 : 2;
      // Row vector j lives at fused sb + j (paired) or sb + j/2 (solo).
      const std::uint64_t scale = s.solo() ? 2 : 1;
      for (unsigned r = 0; r < nrows; ++r, ++slot) {
        const std::uint32_t rv = s.row_vectors[r];
        const std::uint32_t jb =
            fb > sb ? static_cast<std::uint32_t>(
                          std::min<std::uint64_t>(rv, scale * (fb - sb)))
                    : 0u;
        const std::uint32_t je = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(rv, scale * (fe - sb)));
        bool converged = false;
        if constexpr (P::kUsesConvergedSet) {
          converged = prog.skip_destination(s.dest[r]);
        }
        rows.push_back(Row512{sb, s.dest[r], rv, converged ? je : jb, je,
                              slot, static_cast<std::uint8_t>(s.solo() ? 2 : r),
                              s.solo() && je < rv});
      }
    }
    return slot;
  }

  /// Block-major walk of fused range [fb, fe): the graph's 4-lane
  /// BlockIndex splits each *row's* vector list (identical to the
  /// 4-lane per-destination list) per source block; parked
  /// accumulators keep each row's ladder in ascending order across
  /// blocks, so per-row partials match the unblocked walk of the same
  /// range bitwise. Completed rows store directly; a trailing solo
  /// partial (the range ends mid-hub-row) is returned as the
  /// (dest, partial) deposit pair, mirroring process_chunk512 —
  /// {kInvalidVertex, identity} when the range ends on a row boundary.
  template <bool Gated>
  std::pair<VertexId, V> process_blocked_chunk512(
      const P& prog, const Vsd512Graph& graph, const BlockIndex& blocks,
      std::span<V> accum, const DenseFrontier* frontier, EdgeIndex fb,
      EdgeIndex fe, unsigned tid, std::uint64_t& skipped) {
    if (fb >= fe) return {kInvalidVertex, prog.identity()};
    const std::span<const EdgeVector512> vectors = graph.vectors();
    const std::span<const WeightVector512> weights = graph.weights();
    [[maybe_unused]] const std::uint64_t* candidates = candidates_.data();

    const std::uint32_t nrows = collect_rows512(prog, graph, fb, fe, tid);
    const std::vector<Row512>& rows = rows512_[tid];
    AlignedBuffer<Acc>& scratch = scratch512(tid, nrows);
    for (std::uint32_t k = 0; k < nrows; ++k) scratch[k] = acc_identity(prog);

    const std::uint32_t nb = blocks.num_blocks();
    std::uint64_t executed = 0;
    for (std::uint32_t b = 0; b < nb; ++b) {
      const std::uint64_t t0 =
          telemetry_ != nullptr ? telemetry_->now_us() : 0;
      bool touched = false;
      for (const Row512& row : rows) {
        const std::uint64_t lo = std::max<std::uint64_t>(
            row.jb, blocks.split(row.dest, b, row.row_vectors));
        const std::uint64_t hi = std::min<std::uint64_t>(
            row.je, blocks.split(row.dest, b + 1, row.row_vectors));
        if (lo >= hi) continue;
        touched = true;
        Acc acc = scratch[row.slot];
        const bool solo = row.half == 2;
        for (std::uint64_t j = lo; j < hi; ++j) {
          const EdgeIndex fi =
              solo ? row.first_fused + (j >> 1) : row.first_fused + j;
          if constexpr (Gated) {
            if (!detail::candidate_vector(candidates, fi)) {
              ++skipped;
              continue;
            }
          }
          const unsigned h = solo ? static_cast<unsigned>(j & 1)
                                  : static_cast<unsigned>(row.half);
          const WeightVector512* wv =
              weights.empty() ? nullptr : &weights[fi];
          acc_accumulate<Gated>(prog, vectors[fi].half[h],
                                wv ? &wv->half[h] : nullptr, frontier, acc);
        }
        scratch[row.slot] = acc;
      }
      if (touched) {
        ++executed;
        if (telemetry_ != nullptr) {
          telemetry_->record(tid, "pull_block", t0,
                             telemetry_->now_us() - t0, "block", b);
        }
      }
    }
    blocks_executed_.local(tid) += executed;
    if (executed != 0) block_switches_.local(tid) += executed - 1;

    std::pair<VertexId, V> deposit{kInvalidVertex, prog.identity()};
    for (const Row512& row : rows) {
      const V value = acc_reduce(scratch[row.slot]);
      if (row.trailing) {
        deposit = {row.dest, value};
      } else {
        accum[row.dest] = value;
      }
    }
    return deposit;
  }

  /// Blocked traditional: each chunk revisits its rows block-major,
  /// but every row vector (occupied half) is still reduced on its own
  /// and published with one shared-memory combine — nothing parks.
  /// Per destination the publishes stay in ascending row-vector order
  /// (the block splits partition each row ascending), so the combine
  /// ladder per destination is exactly the unblocked traditional
  /// one's. Converged rows get an empty range: min-combining identity
  /// never stores, matching the unblocked no-write path.
  template <bool Atomic, bool Gated>
  void run_traditional512_blocked(const P& prog, const Vsd512Graph& graph,
                                  const BlockIndex& blocks,
                                  std::span<V> accum,
                                  const DenseFrontier* frontier,
                                  ThreadPool& pool, std::uint64_t chunk) {
    const std::span<const EdgeVector512> vectors = graph.vectors();
    const std::span<const WeightVector512> weights = graph.weights();
    [[maybe_unused]] const std::uint64_t* candidates = candidates_.data();
    parallel_for_chunks(
        pool, graph.num_fused(), chunk,
        [&](unsigned tid, const Chunk& c) {
          if (c.begin >= c.end) return;
          std::uint64_t skipped = 0;
          collect_rows512(prog, graph, c.begin, c.end, tid);
          const std::vector<Row512>& rows = rows512_[tid];
          const std::uint32_t nb = blocks.num_blocks();
          std::uint64_t executed = 0;
          for (std::uint32_t b = 0; b < nb; ++b) {
            const std::uint64_t t0 =
                telemetry_ != nullptr ? telemetry_->now_us() : 0;
            bool touched = false;
            for (const Row512& row : rows) {
              const std::uint64_t lo = std::max<std::uint64_t>(
                  row.jb, blocks.split(row.dest, b, row.row_vectors));
              const std::uint64_t hi = std::min<std::uint64_t>(
                  row.je, blocks.split(row.dest, b + 1, row.row_vectors));
              if (lo >= hi) continue;
              touched = true;
              const bool solo = row.half == 2;
              for (std::uint64_t j = lo; j < hi; ++j) {
                const EdgeIndex fi =
                    solo ? row.first_fused + (j >> 1) : row.first_fused + j;
                if constexpr (Gated) {
                  if (!detail::candidate_vector(candidates, fi)) {
                    ++skipped;
                    continue;
                  }
                }
                const unsigned h = solo ? static_cast<unsigned>(j & 1)
                                        : static_cast<unsigned>(row.half);
                const WeightVector512* wv =
                    weights.empty() ? nullptr : &weights[fi];
                Acc acc = acc_identity(prog);
                acc_accumulate<Gated>(prog, vectors[fi].half[h],
                                      wv ? &wv->half[h] : nullptr, frontier,
                                      acc);
                const V value = acc_reduce(acc);
                constexpr bool kForce = program_force_writes<P>();
                if constexpr (Atomic) {
                  atomic_combine<kForce>(&accum[row.dest], value,
                                         [](V a, V b) {
                    return combine_scalar<P::kCombine>(a, b);
                  });
                } else {
                  const V combined =
                      combine_scalar<P::kCombine>(accum[row.dest], value);
                  if (kForce || combined != accum[row.dest]) {
                    accum[row.dest] = combined;
                  }
                }
              }
            }
            if (touched) {
              ++executed;
              if (telemetry_ != nullptr) {
                telemetry_->record(tid, "pull_block", t0,
                                   telemetry_->now_us() - t0, "block", b);
              }
            }
          }
          blocks_executed_.local(tid) += executed;
          if (executed != 0) block_switches_.local(tid) += executed - 1;
          skipped_.local(tid) += skipped;
        },
        telemetry_, "pull_chunk");
  }

  template <bool Gated>
  void run_blocked512(const P& prog, const Vsd512Graph& graph,
                      const BlockIndex& blocks, std::span<V> accum,
                      const DenseFrontier* frontier, ThreadPool& pool,
                      PullParallelism mode, std::uint64_t chunk,
                      MergeBuffer<V>& merge_buffer) {
    const std::span<const EdgeIndex> offsets = graph.slice_offsets();
    switch (mode) {
      case PullParallelism::kSequential: {
        std::uint64_t skipped = 0;
        process_blocked_chunk512<Gated>(prog, graph, blocks, accum, frontier,
                                        0, graph.num_fused(), 0, skipped);
        skipped_.local(0) += skipped;
        break;
      }
      case PullParallelism::kVertexParallel:
        parallel_for_chunks(
            pool, graph.num_slices(), 512,
            [&](unsigned tid, const Chunk& c) {
              std::uint64_t skipped = 0;
              process_blocked_chunk512<Gated>(prog, graph, blocks, accum,
                                              frontier, offsets[c.begin],
                                              offsets[c.end], tid, skipped);
              skipped_.local(tid) += skipped;
            },
            telemetry_, "pull_chunk");
        break;
      case PullParallelism::kTraditional:
        run_traditional512_blocked<true, Gated>(prog, graph, blocks, accum,
                                                frontier, pool, chunk);
        break;
      case PullParallelism::kTraditionalNoAtomic:
        run_traditional512_blocked<false, Gated>(prog, graph, blocks, accum,
                                                 frontier, pool, chunk);
        break;
      case PullParallelism::kSchedulerAware: {
        // The same grid as unblocked scheduler-aware: identical row
        // segments, identical deposit/fold grouping, identical bits.
        build_chunk_grid(graph, chunk);
        merge_buffer.resize(chunks_.size());
        parallel_for_chunks(
            pool, chunks_.size(), 1,
            [&](unsigned tid, const Chunk& c) {
              std::uint64_t skipped = 0;
              for (std::uint64_t idx = c.begin; idx < c.end; ++idx) {
                auto [dest, value] = process_blocked_chunk512<Gated>(
                    prog, graph, blocks, accum, frontier, chunks_[idx].first,
                    chunks_[idx].second, tid, skipped);
                if (dest != kInvalidVertex) {
                  merge_buffer.deposit(idx, dest, value);
                }
              }
              skipped_.local(tid) += skipped;
            },
            telemetry_, "pull_chunk");
        fold_merge_buffer(accum, merge_buffer);
        break;
      }
    }
  }

  double last_merge_seconds_ = 0.0;
  double last_idle_seconds_ = 0.0;
  std::uint64_t last_vectors_skipped_ = 0;
  std::uint64_t last_blocks_executed_ = 0;
  std::uint64_t last_block_switches_ = 0;
  unsigned prefetch_distance_ = 0;  // fused vectors; valid for one run()
  telemetry::Telemetry* telemetry_ = nullptr;  // valid for one run() only
  bool use_fused_ = false;  // AVX-512 kernel selected for this run()
  ReductionArray<std::uint64_t> skipped_{1, 0};
  ReductionArray<std::uint64_t> blocks_executed_{1, 0};
  ReductionArray<std::uint64_t> block_switches_{1, 0};
  AlignedBuffer<std::uint64_t> candidates_;
  std::vector<std::pair<EdgeIndex, EdgeIndex>> chunks_;
  std::vector<AlignedBuffer<Acc>> scratch512_;
  std::vector<std::vector<Row512>> rows512_;
};

}  // namespace grazelle
