// Edge-Push phase over a Vector-Sparse-Source edge array.
//
// Grazelle's push engine keeps the traditional parallelization (§5):
// the outer loop over source vertices is parallel, the frontier prunes
// inactive sources, and updates land in shared accumulators through
// atomic CAS-combines (Listing 1). The "vectorized" variant loads edge
// vectors with SIMD and extracts lanes from the mask, but the update
// itself stays scalar — AVX2 has no atomic scatter, which is why
// Figure 10a shows Edge-Push gaining almost nothing from vectorization.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>

#include "core/program.h"
#include "frontier/dense_frontier.h"
#include "graph/vector_sparse.h"
#include "platform/bits.h"
#include "platform/types.h"
#include "telemetry/telemetry.h"
#include "threading/atomics.h"
#include "threading/parallel_for.h"

namespace grazelle {

template <GraphProgram P, bool Vectorized>
class PushEdgePhase {
 public:
  using V = typename P::Value;

  /// Sparse-frontier push: iterates an explicit active-vertex list
  /// instead of scanning the bitmask — the frontier-representation
  /// switching the paper's §5 leaves to future work (implemented here
  /// as an engine extension; see EngineOptions::sparse_push).
  void run_sparse(const P& prog, const VectorSparseGraph& graph,
                  std::span<V> accum, std::span<const VertexId> active,
                  ThreadPool& pool, telemetry::Telemetry* t = nullptr) {
    parallel_for_chunks(
        pool, active.size(), 16,
        [&](unsigned tid, const Chunk& c) {
          std::uint64_t updates = 0;
          std::uint64_t lanes = 0;
          for (std::uint64_t i = c.begin; i < c.end; ++i) {
            if (t != nullptr) {
              lanes += graph.range(active[i]).vector_count * kEdgeVectorLanes;
            }
            updates += push_vertex(prog, graph, accum, active[i]);
          }
          if (t != nullptr) {
            t->count(tid, telemetry::Counter::kPushUpdates, updates);
            t->count(tid, telemetry::Counter::kEdgesTouched, lanes);
          }
        },
        t, "sparse_push_chunk");
  }

  /// Runs one push Edge phase over `graph` (a VSS structure),
  /// scattering into `accum`. `frontier` selects active sources (null =
  /// all sources active). Parallelized over 64-vertex frontier words.
  ///
  /// `t` (optional) gets per-chunk spans plus kPushUpdates (atomic
  /// combines issued) and kEdgesTouched (lanes examined); the null
  /// checks sit at vertex granularity, never inside the lane loop.
  void run(const P& prog, const VectorSparseGraph& graph, std::span<V> accum,
           const DenseFrontier* frontier, ThreadPool& pool,
           std::uint64_t chunk_words = 64, telemetry::Telemetry* t = nullptr) {
    const std::uint64_t n = graph.num_vertices();
    const std::uint64_t words = bits::ceil_div(n, std::uint64_t{64});
    parallel_for_chunks(
        pool, words, chunk_words,
        [&](unsigned tid, const Chunk& c) {
          std::uint64_t updates = 0;
          std::uint64_t lanes = 0;
          for (std::uint64_t w = c.begin; w < c.end; ++w) {
            std::uint64_t bitsword;
            if (frontier != nullptr) {
              bitsword = frontier->words()[w];
            } else {
              const std::uint64_t base = w * 64;
              const std::uint64_t live =
                  n > base ? std::min<std::uint64_t>(64, n - base) : 0;
              bitsword = live == 64 ? ~std::uint64_t{0}
                                    : ((std::uint64_t{1} << live) - 1);
            }
            bits::for_each_set_bit(bitsword, w * 64, [&](std::uint64_t src) {
              if (t != nullptr) {
                lanes += graph.range(static_cast<VertexId>(src)).vector_count *
                         kEdgeVectorLanes;
              }
              updates +=
                  push_vertex(prog, graph, accum, static_cast<VertexId>(src));
            });
          }
          if (t != nullptr) {
            t->count(tid, telemetry::Counter::kPushUpdates, updates);
            t->count(tid, telemetry::Counter::kEdgesTouched, lanes);
          }
        },
        t, "push_chunk");
  }

 private:
  /// Returns the number of atomic combines issued (kPushUpdates).
  std::uint64_t push_vertex(const P& prog, const VectorSparseGraph& graph,
                            std::span<V> accum, VertexId src) {
    const VertexVectorRange& r = graph.range(src);
    if (r.vector_count == 0) return 0;

    V msg_base;
    if constexpr (P::kMessageIsSourceId) {
      msg_base = static_cast<V>(src);
    } else {
      msg_base = prog.message_array()[src];
    }

    const std::span<const EdgeVector> vectors = graph.vectors();
    const std::span<const WeightVector> weights = graph.weights();
    std::uint64_t updates = 0;
    for (std::uint64_t i = r.first_vector; i < r.first_vector + r.vector_count;
         ++i) {
      const EdgeVector& ev = vectors[i];
      unsigned mask;
      if constexpr (Vectorized) {
#if defined(GRAZELLE_HAVE_AVX2)
        // SIMD load + mask extraction; updates below remain scalar.
        const simd::VecU64 lanes = simd::load_lanes(ev);
        mask = static_cast<unsigned>(_mm256_movemask_pd(
            _mm256_castsi256_pd(simd::valid_mask(lanes).v)));
#else
        mask = ev.valid_mask();
#endif
      } else {
        mask = ev.valid_mask();
      }
      while (mask != 0) {
        const unsigned k = bits::count_trailing_zeros(mask);
        mask &= mask - 1;
        const VertexId dst = ev.neighbor(k);
        if constexpr (P::kUsesConvergedSet) {
          if (prog.skip_destination(dst)) continue;
        }
        V msg = msg_base;
        if constexpr (P::kWeight != simd::WeightOp::kNone) {
          msg = apply_weight_scalar<P::kWeight>(msg, weights[i].w[k]);
        }
        atomic_combine<program_force_writes<P>()>(
            &accum[dst], msg,
            [](V a, V b) { return combine_scalar<P::kCombine>(a, b); });
        ++updates;
      }
    }
    return updates;
  }
};

}  // namespace grazelle
