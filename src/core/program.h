// The Grazelle programming model (paper §5): Gather-Apply-Scatter /
// edgeMap-vertexMap style programs plugged into the engines at compile
// time so inner loops stay free of indirect calls.
//
// A Program supplies:
//
//   using Value                 — aggregation value type (double or
//                                 std::uint64_t; these are the types the
//                                 vector kernels implement)
//   static constexpr simd::CombineOp kCombine
//                               — the commutative/associative operator
//   static constexpr simd::WeightOp kWeight
//                               — how edge weights enter the message
//   static constexpr bool kUsesFrontier
//                               — pull checks `frontier.contains(src)`
//   static constexpr bool kUsesConvergedSet
//                               — pull skips converged destinations
//   static constexpr bool kMessageIsSourceId
//                               — the message is the source's id itself
//                                 (BFS parent discovery) rather than a
//                                 value read from message_array()
//
//   Value identity() const      — neutral element of kCombine
//   const Value* message_array() const
//                               — per-vertex outgoing message values
//                                 (ignored when kMessageIsSourceId)
//   bool skip_destination(VertexId v) const
//                               — only when kUsesConvergedSet
//   bool apply(VertexId v, Value aggregate, unsigned tid)
//                               — Vertex phase: consume the aggregate,
//                                 update properties; returns whether v
//                                 joins the next frontier
#pragma once

#include <concepts>
#include <cstdint>
#include <type_traits>

#include "core/simd.h"
#include "platform/types.h"

namespace grazelle {

/// Scalar combine derived from the same operator tag the vector kernels
/// use, so the two code paths cannot disagree.
template <simd::CombineOp Op, typename V>
[[nodiscard]] inline constexpr V combine_scalar(V a, V b) noexcept {
  if constexpr (Op == simd::CombineOp::kAdd) {
    return a + b;
  } else if constexpr (Op == simd::CombineOp::kOr) {
    return a | b;
  } else {
    return b < a ? b : a;
  }
}

/// Scalar weight application matching the vector kernels.
template <simd::WeightOp Op, typename V>
[[nodiscard]] inline constexpr V apply_weight_scalar(V message,
                                                     Weight w) noexcept {
  if constexpr (Op == simd::WeightOp::kNone) {
    (void)w;
    return message;
  } else if constexpr (Op == simd::WeightOp::kAdd) {
    return message + static_cast<V>(w);
  } else {
    return message * static_cast<V>(w);
  }
}

/// Whether a program demands that every edge-phase update be written
/// back even when it does not change the stored value. Defaults to
/// false (minimization programs naturally skip no-op writes). The
/// write-intense Connected Components variant of Figure 8a sets it.
template <typename P>
[[nodiscard]] inline consteval bool program_force_writes() {
  if constexpr (requires { P::kForceWrites; }) {
    return P::kForceWrites;
  } else {
    return false;
  }
}

/// Compile-time requirements on an engine-pluggable program.
template <typename P>
concept GraphProgram = requires(P prog, const P cprog, VertexId v,
                                typename P::Value value, unsigned tid) {
  typename P::Value;
  requires std::same_as<typename P::Value, double> ||
               std::same_as<typename P::Value, std::uint64_t>;
  { P::kCombine } -> std::convertible_to<simd::CombineOp>;
  { P::kWeight } -> std::convertible_to<simd::WeightOp>;
  { P::kUsesFrontier } -> std::convertible_to<bool>;
  { P::kUsesConvergedSet } -> std::convertible_to<bool>;
  { P::kMessageIsSourceId } -> std::convertible_to<bool>;
  { cprog.identity() } -> std::same_as<typename P::Value>;
  { cprog.message_array() } -> std::same_as<const typename P::Value*>;
  { prog.apply(v, value, tid) } -> std::same_as<bool>;
};

}  // namespace grazelle
