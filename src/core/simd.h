// SIMD wrapper for the Vector-Sparse pull kernel (paper Listing 7).
//
// The kernel needs exactly the operations wrapped here: load an aligned
// 256-bit edge vector, derive per-lane predication masks from the valid
// bits, gather source values (vgatherqpd and the epi64 variant) under
// those masks, combine lanes, and horizontally reduce when the
// top-level vertex changes. Everything is behind plain structs so a
// scalar fallback builds on hosts without AVX2 (selected at compile
// time via GRAZELLE_HAVE_AVX2).
#pragma once

#include <cstdint>

#include "graph/vector_sparse.h"
#include "platform/types.h"

#if defined(GRAZELLE_HAVE_AVX2)
#include <immintrin.h>
#endif

namespace grazelle::simd {

/// The aggregation operators the vector kernels implement. Programs
/// select one; scalar and vector code paths derive from the same tag so
/// they cannot diverge.
enum class CombineOp {
  kAdd,  ///< summation (PageRank, Collaborative Filtering)
  kMin,  ///< minimization (Connected Components, BFS parent, SSSP)
  kOr,   ///< bitwise union (multi-source BFS reachability masks)
};

/// How an edge's message is applied with its weight before combining.
enum class WeightOp {
  kNone,  ///< unweighted: message used as-is
  kAdd,   ///< message + weight (SSSP relaxation)
  kMul,   ///< message * weight (weighted rank / CF)
};

#if defined(GRAZELLE_HAVE_AVX2)

inline constexpr bool kVectorBuild = true;

struct VecU64 {
  __m256i v;
};

struct VecF64 {
  __m256d v;
};

[[nodiscard]] inline VecU64 splat(std::uint64_t x) noexcept {
  return {_mm256_set1_epi64x(static_cast<long long>(x))};
}

[[nodiscard]] inline VecF64 splat(double x) noexcept {
  return {_mm256_set1_pd(x)};
}

/// Aligned load of one EdgeVector's four lanes.
[[nodiscard]] inline VecU64 load_lanes(const EdgeVector& ev) noexcept {
  return {_mm256_load_si256(reinterpret_cast<const __m256i*>(ev.lane))};
}

/// Per-lane all-ones where the lane's valid bit (bit 63) is set. This
/// is the predication mask the paper's format feeds to the masked
/// gathers. Works because bit 63 is the sign bit: lane < 0 <=> valid.
[[nodiscard]] inline VecU64 valid_mask(VecU64 lanes) noexcept {
  return {_mm256_cmpgt_epi64(_mm256_setzero_si256(), lanes.v)};
}

/// Extracts the four 48-bit neighbor ids.
[[nodiscard]] inline VecU64 neighbor_ids(VecU64 lanes) noexcept {
  return {_mm256_and_si256(lanes.v,
                           _mm256_set1_epi64x(static_cast<long long>(
                               kVertexIdMask)))};
}

[[nodiscard]] inline VecU64 bitand_(VecU64 a, VecU64 b) noexcept {
  return {_mm256_and_si256(a.v, b.v)};
}

/// Per-lane all-ones where the frontier bit for each id in `ids` is
/// set — the vectorized form of `frontier.contains(vSrc)` from
/// Listing 2. The four word loads are issued as scalar loads rather
/// than a hardware gather: frontier words are hot in cache and scalar
/// loads beat vgatherqpd latency for them (the value gather, whose
/// footprint is large, stays a real gather in gather_masked).
[[nodiscard]] inline VecU64 frontier_mask(const std::uint64_t* words,
                                          VecU64 ids) noexcept {
  alignas(32) std::uint64_t id[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(id), ids.v);
  const __m256i gathered = _mm256_set_epi64x(
      static_cast<long long>(words[id[3] >> 6]),
      static_cast<long long>(words[id[2] >> 6]),
      static_cast<long long>(words[id[1] >> 6]),
      static_cast<long long>(words[id[0] >> 6]));
  const __m256i bit_idx = _mm256_and_si256(ids.v, _mm256_set1_epi64x(63));
  const __m256i bit =
      _mm256_and_si256(_mm256_srlv_epi64(gathered, bit_idx),
                       _mm256_set1_epi64x(1));
  return {_mm256_cmpeq_epi64(bit, _mm256_set1_epi64x(1))};
}

/// frontier_mask with a hierarchical-summary pre-test: a lane whose
/// whole frontier *word* is provably empty (summary bit clear — see
/// HierarchicalFrontier) never needs its word loaded, and when all four
/// words are provably empty the scattered word loads are skipped
/// entirely. On sparse frontiers the summary (1/64th the bitmask) stays
/// resident in L1 while the bitmask itself does not, so the pre-test
/// turns most membership checks into a single hot load.
[[nodiscard]] inline VecU64 frontier_mask_summary(
    const std::uint64_t* words, const std::uint64_t* summary,
    VecU64 ids) noexcept {
  alignas(32) std::uint64_t id[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(id), ids.v);
  std::uint64_t occupied = 0;
  for (unsigned k = 0; k < 4; ++k) {
    const std::uint64_t w = id[k] >> 6;
    occupied |= (summary[w >> 6] >> (w & 63)) & 1;
  }
  if (occupied == 0) return {_mm256_setzero_si256()};
  return frontier_mask(words, ids);
}

/// True when any lane of `m` has any bit set (ptest, no extracts).
[[nodiscard]] inline bool any_lane(VecU64 m) noexcept {
  return _mm256_testz_si256(m.v, m.v) == 0;
}

/// Masked gather of doubles: lanes with a zero mask keep `defaults`.
[[nodiscard]] inline VecF64 gather_masked(const double* base, VecU64 idx,
                                          VecU64 mask,
                                          VecF64 defaults) noexcept {
  return {_mm256_mask_i64gather_pd(defaults.v, base, idx.v,
                                   _mm256_castsi256_pd(mask.v), 8)};
}

/// Masked gather of 64-bit integers.
[[nodiscard]] inline VecU64 gather_masked(const std::uint64_t* base,
                                          VecU64 idx, VecU64 mask,
                                          VecU64 defaults) noexcept {
  return {_mm256_mask_i64gather_epi64(
      defaults.v, reinterpret_cast<const long long*>(base), idx.v, mask.v,
      8)};
}

/// Per-lane blend: mask lane all-ones -> b, else a.
[[nodiscard]] inline VecF64 blend(VecF64 a, VecF64 b, VecU64 mask) noexcept {
  return {_mm256_blendv_pd(a.v, b.v, _mm256_castsi256_pd(mask.v))};
}

[[nodiscard]] inline VecU64 blend(VecU64 a, VecU64 b, VecU64 mask) noexcept {
  return {_mm256_blendv_epi8(a.v, b.v, mask.v)};
}

[[nodiscard]] inline VecF64 add(VecF64 a, VecF64 b) noexcept {
  return {_mm256_add_pd(a.v, b.v)};
}

[[nodiscard]] inline VecF64 mul(VecF64 a, VecF64 b) noexcept {
  return {_mm256_mul_pd(a.v, b.v)};
}

[[nodiscard]] inline VecF64 min(VecF64 a, VecF64 b) noexcept {
  return {_mm256_min_pd(a.v, b.v)};
}

/// Signed 64-bit min — valid for all Grazelle values because ids,
/// labels and the kInvalidVertex sentinel all fit in 48 bits.
[[nodiscard]] inline VecU64 min(VecU64 a, VecU64 b) noexcept {
  const __m256i a_gt_b = _mm256_cmpgt_epi64(a.v, b.v);
  return {_mm256_blendv_epi8(a.v, b.v, a_gt_b)};
}

template <CombineOp Op>
[[nodiscard]] inline VecF64 combine(VecF64 a, VecF64 b) noexcept {
  if constexpr (Op == CombineOp::kAdd) {
    return add(a, b);
  } else {
    return min(a, b);
  }
}

/// Lane-wise bitwise OR — the mask-union combine of multi-source BFS.
[[nodiscard]] inline VecU64 bit_or(VecU64 a, VecU64 b) noexcept {
  return {_mm256_or_si256(a.v, b.v)};
}

template <CombineOp Op>
[[nodiscard]] inline VecU64 combine(VecU64 a, VecU64 b) noexcept {
  static_assert(Op == CombineOp::kMin || Op == CombineOp::kOr,
                "integer aggregation supports min and or only");
  if constexpr (Op == CombineOp::kOr) {
    return bit_or(a, b);
  } else {
    return min(a, b);
  }
}

template <CombineOp Op>
[[nodiscard]] inline double reduce(VecF64 x) noexcept {
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, x.v);
  if constexpr (Op == CombineOp::kAdd) {
    return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  } else {
    const double m01 = lanes[0] < lanes[1] ? lanes[0] : lanes[1];
    const double m23 = lanes[2] < lanes[3] ? lanes[2] : lanes[3];
    return m01 < m23 ? m01 : m23;
  }
}

template <CombineOp Op>
[[nodiscard]] inline std::uint64_t reduce(VecU64 x) noexcept {
  static_assert(Op == CombineOp::kMin || Op == CombineOp::kOr);
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), x.v);
  if constexpr (Op == CombineOp::kOr) {
    return (lanes[0] | lanes[1]) | (lanes[2] | lanes[3]);
  } else {
    const std::uint64_t m01 = lanes[0] < lanes[1] ? lanes[0] : lanes[1];
    const std::uint64_t m23 = lanes[2] < lanes[3] ? lanes[2] : lanes[3];
    return m01 < m23 ? m01 : m23;
  }
}

/// Loads one WeightVector as doubles.
[[nodiscard]] inline VecF64 load_weights(const WeightVector& wv) noexcept {
  return {_mm256_load_pd(wv.w)};
}

#else  // !GRAZELLE_HAVE_AVX2

inline constexpr bool kVectorBuild = false;

#endif  // GRAZELLE_HAVE_AVX2

}  // namespace grazelle::simd
