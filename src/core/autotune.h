// Closed-loop direction and knob autotuner (DESIGN.md §15).
//
// The DirectionController is the decision half of
// EngineSelect::kAdaptive: each iteration the Session asks it to pick
// push vs pull (and gated vs ungated pull) from the frontier state and
// an online cost model of cycles/edge per execution kind, then feeds
// back the measured cycle count so the model tracks this machine and
// this graph instead of the heuristic constants it was seeded with.
// Samples come from the PMU when one is attached and from rdtsc
// otherwise (platform/pmu read_tsc()), so the loop closes even under
// GRAZELLE_PMU_DISABLE=1 — just with wall-cycle estimates.
//
// It also owns the secondary-knob re-probe: when measured cycles/edge
// drifts beyond kDriftThreshold from the profile it started from
// (sidecar seed or its own first samples), it walks a small candidate
// grid — gating divisor, block shift, prefetch distance — one
// candidate per matching iteration, and locks in the winner. Every
// probe decision is counted (Counter::kTunerProbes & friends) and
// traced ("tuner_probe" events) so the trace shows what the tuner did
// and why.
//
// The controller only ever *selects among* bit-identical execution
// paths for deterministic programs: direction, gating, blocking and
// prefetch all converge to the same values, so adaptive runs match
// every fixed mode (tests/autotune_test.cpp sweeps this).
//
// Deliberately non-templated: it reasons about edge counts and cycle
// samples only, so one translation unit serves every GraphProgram.
#pragma once

#include <cstdint>
#include <vector>

#include "core/options.h"
#include "telemetry/telemetry.h"

namespace grazelle {

/// The three execution kinds the cost model distinguishes. Blocking
/// and lane width are per-session constants, so they do not split the
/// model; gating changes the asymptotic edge count, so it does.
enum class PlanKind : unsigned {
  kPull = 0,
  kGatedPull = 1,
  kPush = 2,
};
inline constexpr unsigned kNumPlanKinds = 3;

[[nodiscard]] constexpr const char* plan_kind_name(PlanKind k) noexcept {
  switch (k) {
    case PlanKind::kPull: return "pull";
    case PlanKind::kGatedPull: return "gated_pull";
    case PlanKind::kPush: return "push";
  }
  return "unknown";
}

/// One iteration's resolved direction choice, with the evidence that
/// produced it — flows into IterationStats and the RunReport
/// direction_trace so tuning decisions are debuggable offline.
struct DirectionDecision {
  PlanKind kind = PlanKind::kPull;
  /// Stable reason label: "no_frontier", "cold_start", "cost_model",
  /// "hysteresis_hold", "seeded".
  const char* reason = "cost_model";
  /// The model's cycles/edge estimate for the chosen kind at decision
  /// time (what the trace compares against the measurement).
  double estimated_cycles_per_edge = 0.0;
  /// Edge count the estimate was scaled by.
  std::uint64_t estimated_edges = 0;
};

class DirectionController {
 public:
  struct Config {
    std::uint64_t num_vertices = 0;
    std::uint64_t num_edges = 0;
    /// P::kUsesFrontier. False pins every decision to pull (push with
    /// no frontier floods all edges *and* breaks PR's bitwise
    /// reproducibility), which keeps adaptive PR bit-identical to the
    /// pull-only fixed mode.
    bool uses_frontier = true;
    /// GatingPolicy::enabled && uses_frontier: whether kGatedPull is a
    /// candidate at all.
    bool gating_available = false;
    /// Whether the session resolved a non-trivial block index (block-
    /// shift probing is pointless otherwise).
    bool blocking_available = false;
    std::uint32_t base_gating_divisor = 32;
    std::uint32_t base_block_shift = 0;     ///< 0 = no block index
    std::int32_t base_prefetch_distance = 0;
    /// Sidecar seed (TuningSeed::present pre-warms model and knobs).
    TuningSeed seed{};
  };

  explicit DirectionController(const Config& cfg);

  /// Picks this iteration's execution kind. `frontier_out_edges` is
  /// the previous Vertex phase's active-out-edge sum (0 before the
  /// first iteration).
  [[nodiscard]] DirectionDecision decide(std::uint64_t frontier_size,
                                         std::uint64_t frontier_out_edges);

  /// Feeds back the measured cycle count for the Edge phase just run
  /// under `d`. Updates the EWMA cost model, advances any in-flight
  /// probe, and may trigger a drift re-probe round.
  void observe(const DirectionDecision& d, std::uint64_t cycles);

  /// Optionally feeds the PMU's LLC-misses/edge for the same phase
  /// (call after observe; ignored when negative).
  void observe_llc(double llc_misses_per_edge);

  // -- knob overrides the Session applies each iteration ------------
  [[nodiscard]] std::uint32_t gating_divisor() const noexcept {
    return gating_divisor_;
  }
  /// -1 = keep the session's own resolution; >= 0 overrides.
  [[nodiscard]] std::int32_t prefetch_distance() const noexcept {
    return prefetch_distance_;
  }
  /// 0 = keep the session's resolved shift; != 0 overrides.
  [[nodiscard]] std::uint32_t block_shift() const noexcept {
    return block_shift_;
  }

  // -- introspection (reports, tests) --------------------------------
  [[nodiscard]] double model_cpe(PlanKind k) const noexcept {
    const unsigned i = static_cast<unsigned>(k);
    return cpe_[i < kNumPlanKinds ? i : 0];
  }
  [[nodiscard]] std::uint64_t samples(PlanKind k) const noexcept {
    const unsigned i = static_cast<unsigned>(k);
    return samples_[i < kNumPlanKinds ? i : 0];
  }
  [[nodiscard]] std::uint64_t total_samples() const noexcept;
  [[nodiscard]] std::uint64_t probe_count() const noexcept {
    return probe_count_;
  }
  [[nodiscard]] std::uint64_t direction_switches() const noexcept {
    return direction_switches_;
  }
  [[nodiscard]] std::uint64_t drift_retunes() const noexcept {
    return drift_retunes_;
  }
  [[nodiscard]] bool probing() const noexcept { return probing_; }

  /// Exports the current model + locked knobs as a TuningSeed (the
  /// engine-side mirror of a sidecar record) for persistence.
  [[nodiscard]] TuningSeed learned() const;

  /// Attaches a sink for probe/switch counters and trace events.
  void set_telemetry(telemetry::Telemetry* t) noexcept { telemetry_ = t; }

  // Tunables, exposed for the unit tests.
  static constexpr double kEwmaAlpha = 0.3;
  /// Stickiness: the incumbent kind survives until a challenger is
  /// this factor cheaper (prevents flapping on near-ties).
  static constexpr double kHysteresisMargin = 1.15;
  /// Drift factor (either direction) of measured vs profile
  /// cycles/edge that triggers a knob re-probe round.
  static constexpr double kDriftThreshold = 1.5;
  /// Samples of a kind required before its drift can trigger a
  /// re-probe (early samples are warm-up noise).
  static constexpr std::uint64_t kDriftMinSamples = 4;
  /// Gated pull touches roughly the frontier's out-edges padded to
  /// vector granularity; this slop factor scales that estimate.
  static constexpr double kGatedPullSlop = 4.0;
  /// Samples are clamped to [profile/8, profile*8] before entering
  /// the model: a near-empty phase (BFS's first and last iterations)
  /// is dominated by fixed scheduling overhead, and dividing that by
  /// a handful of edges yields absurd cycles/edge figures that would
  /// otherwise wedge the model away from a kind permanently.
  static constexpr double kModelTrustFactor = 8.0;
  /// A sample's EWMA weight additionally scales with the share of the
  /// graph's edges the phase covered (full weight from 1/256th of the
  /// graph upward): a 30-edge tail phase carries no per-edge signal
  /// and must not steer decisions about million-edge phases.
  static constexpr double kFullWeightEdgeFraction = 1.0 / 256.0;
  // Heuristic cost-model seeds (cycles/edge) used when no sidecar seed
  // is present. Absolute values matter less than their order: push
  // costs more per edge (atomics, scattered writes) but touches only
  // the frontier's edges.
  static constexpr double kSeedPullCpe = 3.0;
  static constexpr double kSeedGatedPullCpe = 6.0;
  static constexpr double kSeedPushCpe = 9.0;

 private:
  struct Probe {
    enum class Knob : unsigned { kGatingDivisor, kPrefetch, kBlockShift };
    Knob knob;
    std::uint32_t value;
    double measured_cpe = -1.0;
  };

  void apply_probe(const Probe& p) noexcept;
  void begin_retune(PlanKind kind);
  void finish_retune();
  [[nodiscard]] std::uint64_t estimated_edges(
      PlanKind k, std::uint64_t frontier_size,
      std::uint64_t frontier_out_edges) const noexcept;

  Config cfg_;
  double cpe_[kNumPlanKinds];
  double profile_cpe_[kNumPlanKinds];  ///< drift baseline
  std::uint64_t samples_[kNumPlanKinds] = {0, 0, 0};
  double llc_misses_per_edge_ = 0.0;
  std::uint64_t llc_samples_ = 0;

  std::uint32_t gating_divisor_;
  std::int32_t prefetch_distance_;
  std::uint32_t block_shift_;

  bool have_previous_ = false;
  PlanKind previous_ = PlanKind::kPull;

  bool probing_ = false;
  PlanKind probe_kind_ = PlanKind::kPull;
  std::vector<Probe> probe_queue_;
  std::size_t probe_index_ = 0;

  std::uint64_t probe_count_ = 0;
  std::uint64_t direction_switches_ = 0;
  std::uint64_t drift_retunes_ = 0;

  telemetry::Telemetry* telemetry_ = nullptr;
};

}  // namespace grazelle
