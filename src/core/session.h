// Re-entrant execution session (DESIGN.md §13): the per-request half
// of the Engine split. A Session binds one GraphProgram instantiation
// to one shared GraphContext and owns every piece of mutable state a
// run needs — accumulators, frontiers, merge buffer, per-thread phase
// scratch, and the EngineOptions snapshot — so any number of Sessions
// execute concurrently over the same context with no shared mutable
// state between them.
//
// By default each Session owns a ThreadPool sized from its options; a
// server worker that runs requests back-to-back can instead pass a
// long-lived pool it owns (one Session at a time per pool — fork-join
// pools are not re-entrant).
//
// This is §5's hybrid engine verbatim: it alternates Edge and Vertex
// phases, selecting Edge-Push or Edge-Pull per iteration from the
// frontier state, with the scheduler-aware parallelized and
// AVX2/AVX-512-vectorized pull engines as the centerpiece. The
// one-shot own-everything `Engine` in core/engine.h is now a thin
// wrapper: a private GraphContext plus this Session.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/autotune.h"
#include "core/graph_context.h"
#include "core/merge_buffer.h"
#include "core/options.h"
#include "core/program.h"
#include "core/pull_engine.h"
#include "core/push_engine.h"
#include "core/vertex_phase.h"
#include "frontier/sparse_frontier.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "platform/cpu_features.h"
#include "platform/numa_topology.h"
#include "platform/prefetch.h"
#include "platform/timer.h"
#include "telemetry/report.h"
#include "telemetry/telemetry.h"

namespace grazelle {

/// Compile-time-vectorized hybrid engine session bound to one shared
/// GraphContext. The same instance can run many programs / iterations;
/// all large state (accumulators, frontiers, merge buffer) is
/// allocated once. Call reset() between runs to reuse an instance.
template <GraphProgram P, bool Vectorized>
class Session {
 public:
  using V = typename P::Value;

  /// `shared_pool`, when non-null, must outlive the session and must
  /// not be running another session's phases concurrently; when null
  /// the session owns a pool of options.num_threads threads.
  ///
  /// The session pins the context's head epoch at construction: every
  /// graph, NUMA-piece, and block-index reference below resolves
  /// through that snapshot, so a concurrent publish() on the context
  /// never perturbs a running session (DESIGN.md §14).
  Session(const GraphContext& context, const EngineOptions& options,
          ThreadPool* shared_pool = nullptr)
      : context_(context),
        epoch_(context.snapshot()),
        graph_(epoch_->graph()),
        options_(options),
        topology_(options.numa_nodes,
                  std::max(1u, (shared_pool != nullptr
                                    ? static_cast<unsigned>(shared_pool->size())
                                    : options.num_threads) /
                                   std::max(1u, options.numa_nodes))),
        owned_pool_(shared_pool != nullptr
                        ? nullptr
                        : std::make_unique<ThreadPool>(options.num_threads)),
        pool_(shared_pool != nullptr ? *shared_pool : *owned_pool_),
        vertex_phase_(pool_.size()),
        accum_(graph_.num_vertices()),
        frontier_(graph_.num_vertices()),
        next_frontier_(graph_.num_vertices()),
        numa_pieces_(epoch_->numa_pieces(options.numa_nodes)) {
    for (const NumaPiece& piece : numa_pieces_) {
      const unsigned node =
          static_cast<unsigned>(&piece - numa_pieces_.data());
      topology_.record_allocation(node,
                                  piece.vectors.size() * sizeof(EdgeVector));
    }
    configure_blocking();
    gating_divisor_ = options.gating.density_divisor;
    // Adaptive direction mode (DESIGN.md §15): a per-session
    // DirectionController picks push vs pull each iteration from its
    // online cost model and may override the secondary knobs; the
    // fixed modes and kAuto keep the static heuristic path below.
    if (options.direction.select == EngineSelect::kAdaptive) {
      DirectionController::Config cfg;
      cfg.num_vertices = graph_.num_vertices();
      cfg.num_edges = graph_.num_edges();
      cfg.uses_frontier = P::kUsesFrontier;
      cfg.gating_available = options.gating.enabled && P::kUsesFrontier;
      cfg.blocking_available = blocks_ != nullptr;
      cfg.base_gating_divisor =
          static_cast<std::uint32_t>(options.gating.density_divisor);
      cfg.base_block_shift =
          blocks_ != nullptr ? blocks_->source_shift() : 0;
      cfg.base_prefetch_distance =
          static_cast<std::int32_t>(prefetch_distance_);
      cfg.seed = options.tuning;
      controller_ = std::make_unique<DirectionController>(cfg);
      apply_tuner_overrides();
    }
    // Lane-policy resolution (DESIGN.md §12): the fused 8-lane layout
    // is used when the graph carries one and either the driver forces
    // it (k8 — the structure runs fine on per-half 4-lane or scalar
    // kernels, which is what the forced-scalar CI identity checks
    // exercise) or kAuto finds the full AVX-512 kernel path available.
    use_wide_ = options.lanes != LanePolicy::k4 &&
                graph_.vsd512().present() &&
                (options.lanes == LanePolicy::k8 ||
                 (Vectorized && wide_kernels_available()));
  }

  ~Session() {
    // A shared pool outlives this session; never leave it pointing at
    // a telemetry sink the session's owner is about to destroy.
    if (telemetry_ != nullptr) pool_.set_telemetry(nullptr);
  }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  [[nodiscard]] const GraphContext& context() const noexcept {
    return context_;
  }

  /// The epoch this session pinned at construction (it may lag the
  /// context's head after a publish; the session intentionally keeps
  /// serving the graph it started with).
  [[nodiscard]] const GraphContext::Epoch& epoch() const noexcept {
    return *epoch_;
  }

  /// The pinned epoch's graph — what every phase of this session runs
  /// over. Callers building programs for this session must size them
  /// from here, not from context().graph(), which may already be a
  /// newer epoch.
  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }

  /// Current frontier (mutable so callers seed it before run()).
  [[nodiscard]] DenseFrontier& frontier() noexcept { return frontier_; }

  [[nodiscard]] ThreadPool& pool() noexcept { return pool_; }

  [[nodiscard]] const NumaTopology& topology() const noexcept {
    return topology_;
  }

  [[nodiscard]] const std::vector<NumaPiece>& numa_pieces() const noexcept {
    return numa_pieces_;
  }

  /// Attaches (or with nullptr detaches) a telemetry sink for
  /// subsequent phases/runs. The sink only observes: results are
  /// bit-identical with and without one. The session forwards it to
  /// the pool and every phase runner.
  void set_telemetry(telemetry::Telemetry* t) noexcept {
    telemetry_ = t;
    pool_.set_telemetry(t);
    if (controller_ != nullptr) controller_->set_telemetry(t);
  }
  [[nodiscard]] telemetry::Telemetry* telemetry() const noexcept {
    return telemetry_;
  }

  /// Returns the session to its post-construction state so it can
  /// serve another request: clears both frontiers and the direction-
  /// heuristic memory. (Accumulators are primed by run().)
  void reset() noexcept {
    frontier_.clear_all();
    next_frontier_.clear_all();
    last_active_out_edges_ = 0;
  }

  /// Resets all accumulators to the program's identity. Must run once
  /// before the first Edge phase (the Vertex phase keeps them reset
  /// afterwards).
  void prime_accumulators(const P& prog) {
    parallel_for(pool_, accum_.size(), 65536,
                 [&](std::uint64_t v) { accum_[v] = prog.identity(); });
  }

  /// Resolves the per-iteration Edge-phase decision — direction
  /// (Beamer-style heuristic honoring DirectionPolicy::select), pull
  /// gating (GatingPolicy), sparse push (DirectionPolicy) — for a
  /// frontier of `frontier_size` vertices, without running anything.
  [[nodiscard]] PhasePlan plan_edge_phase(std::uint64_t frontier_size) const {
    if (choose_pull(frontier_size)) {
      return PhasePlan::pull(should_gate(frontier_size), blocking_active());
    }
    const bool sparse =
        options_.direction.sparse_push && P::kUsesFrontier &&
        frontier_size <
            graph_.num_vertices() / options_.direction.sparse_push_divisor;
    return PhasePlan::push(sparse);
  }

  /// Runs one Edge phase exactly as described by `plan` — the single
  /// entry point behind which pull/gated-pull/push/sparse-push live.
  /// Drivers either pass plan_edge_phase(...) for the engine's own
  /// heuristic decision or construct a PhasePlan directly (benchmarks
  /// compare gated vs ungated on identical frontiers this way).
  void run_edge_phase(const P& prog, const PhasePlan& plan) {
    if (plan.is_pull()) {
      PullRunConfig cfg;
      cfg.mode = options_.pull_mode;
      cfg.chunk_vectors = options_.chunk_vectors;
      cfg.gated = plan.gated;
      cfg.blocks = plan.blocked ? blocks_ : nullptr;
      cfg.prefetch_distance = prefetch_distance_;
      last_pull_was_wide_ = use_wide_;
      if (use_wide_) {
        pull512_phase_.run(prog, graph_.vsd512(), accum_.span(),
                           P::kUsesFrontier ? &frontier_ : nullptr, pool_,
                           cfg, merge_buffer_, telemetry_);
      } else {
        pull_phase_.run(prog, graph_.vsd(), accum_.span(),
                        P::kUsesFrontier ? &frontier_ : nullptr, pool_, cfg,
                        merge_buffer_, telemetry_);
      }
      return;
    }
    if (plan.sparse && P::kUsesFrontier) {
      const SparseFrontier sparse = SparseFrontier::from_dense(frontier_);
      push_phase_.run_sparse(prog, graph_.vss(), accum_.span(),
                             sparse.vertices(), pool_, telemetry_);
      return;
    }
    push_phase_.run(prog, graph_.vss(), accum_.span(),
                    P::kUsesFrontier ? &frontier_ : nullptr, pool_,
                    /*chunk_words=*/64, telemetry_);
  }

  /// Whether pull iterations run over the fused 8-lane layout
  /// (resolved once at construction from LanePolicy, the graph's
  /// Vsd512 presence, and the host kernels).
  [[nodiscard]] bool wide_active() const noexcept { return use_wide_; }

  /// Edge vectors the occupancy gate skipped during the most recent
  /// Edge-Pull phase (4-lane-equivalent units on the fused path).
  [[nodiscard]] std::uint64_t last_vectors_skipped() const noexcept {
    return last_pull_was_wide_ ? pull512_phase_.last_vectors_skipped()
                               : pull_phase_.last_vectors_skipped();
  }

  /// Non-empty (chunk, block) segments the most recent Edge-Pull phase
  /// executed (0 when it ran unblocked).
  [[nodiscard]] std::uint64_t last_blocks_executed() const noexcept {
    return last_pull_was_wide_ ? pull512_phase_.last_blocks_executed()
                               : pull_phase_.last_blocks_executed();
  }

  /// Intra-chunk source-block transitions of the most recent Edge-Pull
  /// phase.
  [[nodiscard]] std::uint64_t last_block_switches() const noexcept {
    return last_pull_was_wide_ ? pull512_phase_.last_block_switches()
                               : pull_phase_.last_block_switches();
  }

  /// Whether pull iterations run cache-blocked: blocking was requested
  /// and the resolved block index is non-trivial for this graph.
  [[nodiscard]] bool blocking_active() const noexcept {
    return blocks_ != nullptr;
  }

  /// The resolved block index (nullptr when blocking is inactive).
  [[nodiscard]] const BlockIndex* block_index() const noexcept {
    return blocks_;
  }

  /// Software-prefetch distance the pull walkers use (0 = disabled).
  [[nodiscard]] unsigned prefetch_distance() const noexcept {
    return prefetch_distance_;
  }

  /// Whether a pull iteration over a frontier of this size would apply
  /// the occupancy gate. Uses the effective divisor — the policy's
  /// value, or the autotuner's locked-in override under kAdaptive.
  [[nodiscard]] bool should_gate(std::uint64_t frontier_size) const noexcept {
    return options_.gating.enabled && P::kUsesFrontier &&
           frontier_size * gating_divisor_ <= graph_.num_vertices();
  }

  /// The adaptive-mode controller (nullptr unless
  /// EngineSelect::kAdaptive was selected).
  [[nodiscard]] const DirectionController* controller() const noexcept {
    return controller_.get();
  }

  /// Exports the controller's current model + knob winners for sidecar
  /// persistence; TuningSeed::present == false for non-adaptive
  /// sessions or before any iteration ran.
  [[nodiscard]] TuningSeed learned_tuning() const {
    if (controller_ == nullptr || controller_->total_samples() == 0) {
      return TuningSeed{};
    }
    return controller_->learned();
  }

  /// One Vertex phase; swaps in the next frontier.
  VertexPhaseResult run_vertex(P& prog) {
    const VertexPhaseResult r =
        vertex_phase_.run(prog, accum_.span(), graph_.out_degrees(),
                          next_frontier_, pool_, telemetry_);
    frontier_.swap(next_frontier_);
    return r;
  }

  /// Full synchronous execution: iterates Edge+Vertex until the
  /// frontier empties (frontier-driven programs) or `max_iterations`
  /// is reached. The caller must have seeded frontier() and the
  /// program's state.
  RunStats run(P& prog, unsigned max_iterations) {
    RunStats stats;
    WallTimer total;
    // Whole-run PMU bracket: one "run"-named sample (and trace span)
    // covering priming and every iteration — the RunReport's top-level
    // counter deltas. Costless without telemetry or a PMU attached.
    telemetry::ScopedSpan run_span(telemetry_, 0, "run", nullptr, 0,
                                   telemetry::SpanPmu::kSample);
    prime_accumulators(prog);

    for (unsigned iter = 0; iter < max_iterations; ++iter) {
      IterationStats it;
      it.frontier_size = P::kUsesFrontier ? frontier_.count()
                                          : graph_.num_vertices();
      if (P::kUsesFrontier && it.frontier_size == 0) break;

      // Optional per-iteration hook: programs fold their global
      // variables (per-thread reduction slots) here, between the
      // previous Vertex phase's barrier and the next Edge phase.
      if constexpr (requires { prog.begin_iteration(); }) {
        prog.begin_iteration();
      }

      DirectionDecision decision;
      if (controller_ != nullptr) {
        decision =
            controller_->decide(it.frontier_size, last_active_out_edges_);
        it.plan = plan_from_kind(decision.kind, it.frontier_size);
        it.direction_reason = decision.reason;
        it.estimated_cycles_per_edge = decision.estimated_cycles_per_edge;
      } else {
        it.plan = plan_edge_phase(it.frontier_size);
      }
      it.used_pull = it.plan.is_pull();
      it.gated = it.plan.is_pull() && it.plan.gated;
      it.blocked = it.plan.is_pull() && it.plan.blocked;
      it.used_sparse_push = !it.plan.is_pull() && it.plan.sparse;

      WallTimer edge_timer;
      const std::uint64_t tsc_before = telemetry::read_tsc();
      {
        telemetry::ScopedSpan span(telemetry_, 0, it.plan.name(),
                                   "iteration", iter,
                                   telemetry::SpanPmu::kSample);
        run_edge_phase(prog, it.plan);
      }
      it.edge_seconds = edge_timer.seconds();
      if (controller_ != nullptr) {
        observe_edge_phase(it, decision, telemetry::read_tsc() - tsc_before);
      }

      if (it.used_pull) {
        it.merge_seconds = last_pull_was_wide_
                               ? pull512_phase_.last_merge_seconds()
                               : pull_phase_.last_merge_seconds();
        it.idle_seconds = last_pull_was_wide_
                              ? pull512_phase_.last_idle_seconds()
                              : pull_phase_.last_idle_seconds();
        it.vectors_skipped = last_vectors_skipped();
        it.blocks_executed = last_blocks_executed();
        if (it.gated) {
          ++stats.gated_iterations;
          stats.vectors_skipped += it.vectors_skipped;
        }
        if (it.blocked) ++stats.blocked_iterations;
      } else if (it.used_sparse_push) {
        ++stats.sparse_push_iterations;
      }

      WallTimer vertex_timer;
      VertexPhaseResult vr;
      {
        telemetry::ScopedSpan span(telemetry_, 0, "vertex", "iteration",
                                   iter, telemetry::SpanPmu::kSample);
        vr = run_vertex(prog);
      }
      it.vertex_seconds = vertex_timer.seconds();
      it.changed = vr.changed;
      last_active_out_edges_ = vr.active_out_edges;

      ++stats.iterations;
      (it.used_pull ? stats.pull_iterations : stats.push_iterations) += 1;
      stats.per_iteration.push_back(it);

      if (P::kUsesFrontier && vr.changed == 0) break;
    }
    stats.total_seconds = total.seconds();
    return stats;
  }

  /// Incremental recompute (DESIGN.md §14): resumes iteration from a
  /// program warm-started with a previous fixpoint, seeding the
  /// frontier with the delta-touched sources instead of every vertex.
  /// The program must be monotone under re-iteration from its old
  /// fixpoint (ConnectedComponents::warm_start qualifies: min-label
  /// chaotic iteration converges to the unique new fixpoint from any
  /// state ≥ it). The caller is responsible for the insert-only
  /// precondition — an effective delete invalidates the old fixpoint
  /// as a lower bound and requires a full recompute.
  RunStats run_incremental(P& prog, std::span<const VertexId> seeds,
                           unsigned max_iterations) {
    reset();
    for (const VertexId v : seeds) frontier_.set(v);
    return run(prog, max_iterations);
  }

 private:
  /// Resolves the blocking and prefetch policies against this graph
  /// and host. Block indexes live in the shared GraphContext: the
  /// container's persisted index when its shift matches, else a
  /// context-cached build shared by every session with this budget.
  /// A trivial (single-block) outcome disables blocking entirely.
  void configure_blocking() {
    // Auto mode only prefetches when the gathered source-value array
    // outgrows the LLC — on an LLC-resident graph every gather already
    // hits cache and the extra prefetch decode/issue per vector is pure
    // overhead. An explicit distance is always honored.
    const bool gathers_miss_llc =
        graph_.vsd().num_vertices() * sizeof(V) > cache_topology().llc_bytes;
    prefetch_distance_ =
        options_.prefetch.enabled
            ? (options_.prefetch.distance != 0
                   ? options_.prefetch.distance
                   : (gathers_miss_llc ? platform::default_prefetch_distance()
                                       : 0))
            : 0;
    if (!options_.blocking.enabled) return;
    const std::uint64_t budget =
        options_.blocking.block_bytes != 0
            ? options_.blocking.block_bytes
            : BlockIndex::default_budget_bytes(options_.blocking.llc_fraction);
    const unsigned shift = BlockIndex::shift_for_budget(
        graph_.vsd().num_vertices(), sizeof(V), budget);
    blocks_ = epoch_->block_index(shift);
  }

  [[nodiscard]] bool choose_pull(std::uint64_t frontier_size) const {
    switch (options_.direction.select) {
      case EngineSelect::kPullOnly:
        return true;
      case EngineSelect::kPushOnly:
        return false;
      case EngineSelect::kAuto:
      case EngineSelect::kAdaptive:
        // run() routes adaptive planning through the controller;
        // drivers calling plan_edge_phase() directly get the static
        // heuristic (every candidate is result-identical anyway).
        break;
    }
    if (!P::kUsesFrontier) return true;
    // Beamer-style direction heuristic: pull once the frontier's edge
    // work is a substantial fraction of the graph. With frontier gating
    // on, sparse pull iterations skip most edge vectors outright, so
    // the pull band widens (a larger divisor lowers the threshold).
    const std::uint64_t divisor = options_.gating.enabled
                                      ? options_.direction.gated_pull_divisor
                                      : options_.direction.pull_divisor;
    return should_use_dense(frontier_size, last_active_out_edges_,
                            graph_.num_edges(), divisor);
  }

  /// Maps a controller decision onto a concrete PhasePlan, reusing the
  /// static path's sparse-push and blocking resolution.
  [[nodiscard]] PhasePlan plan_from_kind(PlanKind kind,
                                         std::uint64_t frontier_size) const {
    switch (kind) {
      case PlanKind::kPull:
        return PhasePlan::pull(false, blocking_active());
      case PlanKind::kGatedPull:
        return PhasePlan::pull(true, blocking_active());
      case PlanKind::kPush:
        break;
    }
    const bool sparse =
        options_.direction.sparse_push && P::kUsesFrontier &&
        frontier_size <
            graph_.num_vertices() / options_.direction.sparse_push_divisor;
    return PhasePlan::push(sparse);
  }

  /// Closes the feedback loop after an adaptive Edge phase: prefers
  /// the PMU's cycle delta for the phase (exact, or the rdtsc estimate
  /// in degraded mode) over the raw caller-side tsc delta, feeds the
  /// model, then applies any knob overrides the controller locked in.
  void observe_edge_phase(IterationStats& it,
                          const DirectionDecision& decision,
                          std::uint64_t tsc_cycles) {
    std::uint64_t cycles = tsc_cycles;
    if (telemetry_ != nullptr && !telemetry_->pmu_samples().empty()) {
      const telemetry::PmuSample& s = telemetry_->pmu_samples().back();
      const std::uint64_t pmu_cycles =
          s.delta[static_cast<unsigned>(telemetry::PmuCounter::kCycles)];
      if (pmu_cycles > 0) {
        cycles = pmu_cycles;
        const std::uint64_t misses = s.delta[static_cast<unsigned>(
            telemetry::PmuCounter::kLlcMisses)];
        if (misses > 0 && decision.estimated_edges > 0) {
          controller_->observe_llc(static_cast<double>(misses) /
                                   static_cast<double>(
                                       decision.estimated_edges));
        }
      }
    }
    controller_->observe(decision, cycles);
    it.measured_cycles_per_edge =
        static_cast<double>(cycles) /
        static_cast<double>(std::max<std::uint64_t>(
            decision.estimated_edges, 1));
    apply_tuner_overrides();
  }

  /// Applies the controller's current knob overrides to the session's
  /// execution state. Cheap when nothing changed; a block-shift change
  /// resolves through the epoch's shared block-index cache.
  void apply_tuner_overrides() {
    gating_divisor_ = controller_->gating_divisor();
    if (controller_->prefetch_distance() >= 0) {
      prefetch_distance_ =
          static_cast<unsigned>(controller_->prefetch_distance());
    }
    const std::uint32_t shift = controller_->block_shift();
    if (shift != 0 && blocks_ != nullptr &&
        shift != blocks_->source_shift()) {
      const BlockIndex* resolved = epoch_->block_index(shift);
      if (resolved != nullptr) blocks_ = resolved;
    }
  }

  const GraphContext& context_;
  GraphContext::Snapshot epoch_;  // pinned at construction
  const Graph& graph_;            // == epoch_->graph()
  EngineOptions options_;
  NumaTopology topology_;
  std::unique_ptr<ThreadPool> owned_pool_;  // null when pool is shared
  ThreadPool& pool_;
  PullEdgePhase<P, Vectorized> pull_phase_;
  Pull512EdgePhase<P, Vectorized> pull512_phase_;
  PushEdgePhase<P, Vectorized> push_phase_;
  VertexPhase<P> vertex_phase_;
  MergeBuffer<V> merge_buffer_;
  AlignedBuffer<V> accum_;
  DenseFrontier frontier_;
  DenseFrontier next_frontier_;
  const std::vector<NumaPiece>& numa_pieces_;
  const BlockIndex* blocks_ = nullptr;
  unsigned prefetch_distance_ = 0;
  /// Effective gating divisor: GatingPolicy::density_divisor, possibly
  /// overridden by the adaptive controller.
  std::uint64_t gating_divisor_ = 32;
  /// Present only under EngineSelect::kAdaptive.
  std::unique_ptr<DirectionController> controller_;
  bool use_wide_ = false;
  bool last_pull_was_wide_ = false;
  telemetry::Telemetry* telemetry_ = nullptr;
  // 0 so the first iteration's direction choice rests on the frontier
  // size alone (a single-seed BFS must start with a push, a full
  // frontier with a pull).
  std::uint64_t last_active_out_edges_ = 0;
};

}  // namespace grazelle
