// Asynchronous execution engine.
//
// The paper (§2) restricts Grazelle to synchronous engines, citing
// simplicity and "no clear winner" between the two styles [19, 66];
// this module supplies the other side of that comparison so the claim
// can be examined on this codebase (bench_async). It implements the
// classic worklist-driven asynchronous pattern for *monotone*
// minimization programs (Connected Components, SSSP):
//
//  * vertex properties are updated in place with atomic min-combines —
//    a thread immediately observes its neighbors' freshest values, with
//    no phase barrier and no separate accumulator array;
//  * a deduplicated worklist of active vertices drives execution:
//    relaxing a vertex pushes every out-neighbor whose property it
//    lowered;
//  * the worklist is drained in batches (atomic cursor over the active
//    array, per-thread append buffers for newly-activated vertices),
//    but value propagation is fully asynchronous — an activation in
//    the current batch can be relaxed with values produced moments ago.
//
// Only minimization programs whose message array *is* the property
// array qualify (monotone convergence guarantees termination);
// enforced at compile time via AsyncProgram.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/program.h"
#include "frontier/dense_frontier.h"
#include "graph/graph.h"
#include "platform/timer.h"
#include "telemetry/telemetry.h"
#include "threading/atomics.h"
#include "threading/thread_pool.h"

namespace grazelle {

/// Requirements for asynchronous execution: a GraphProgram with
/// minimization combine, message == property (not source ids), and
/// mutable access to the property array.
template <typename P>
concept AsyncProgram = GraphProgram<P> &&
                       (P::kCombine == simd::CombineOp::kMin) &&
                       (!P::kMessageIsSourceId) && requires(P prog) {
                         {
                           prog.property_array()
                         } -> std::same_as<typename P::Value*>;
                       };

struct AsyncRunStats {
  std::uint64_t batches = 0;
  std::uint64_t relaxations = 0;  // vertices popped from the worklist
  std::uint64_t edge_visits = 0;
  double total_seconds = 0.0;
};

template <AsyncProgram P>
class AsyncEngine {
 public:
  using V = typename P::Value;

  AsyncEngine(const Graph& graph, unsigned num_threads)
      : graph_(graph),
        pool_(num_threads),
        queued_(graph.num_vertices()),
        local_(pool_.size()) {}

  [[nodiscard]] ThreadPool& pool() noexcept { return pool_; }

  /// Attaches (or with nullptr detaches) a telemetry sink: one span per
  /// batch plus kAsyncRelaxations / kAsyncEdgeVisits, folded from the
  /// per-thread tallies the engine already keeps (no hot-path cost).
  void set_telemetry(telemetry::Telemetry* t) noexcept {
    telemetry_ = t;
    pool_.set_telemetry(t);
  }

  /// Runs to convergence from the given seed vertices. The program's
  /// property array must already reflect the seeds (e.g. dist[src]=0).
  AsyncRunStats run(P& prog, std::span<const VertexId> seeds) {
    AsyncRunStats stats;
    WallTimer timer;

    std::vector<VertexId> active(seeds.begin(), seeds.end());
    queued_.clear_all();
    for (VertexId v : active) queued_.set(v);

    const CompressedSparse& csr = graph_.csr();
    V* property = prog.property_array();

    while (!active.empty()) {
      ++stats.batches;
      std::atomic<std::uint64_t> cursor{0};
      std::atomic<std::uint64_t> relaxations{0};
      std::atomic<std::uint64_t> edge_visits{0};

      telemetry::ScopedSpan batch_span(telemetry_, 0, "async_batch",
                                       "active", active.size());
      pool_.run([&](unsigned tid) {
        std::vector<VertexId>& next = local_[tid];
        next.clear();
        std::uint64_t my_relax = 0;
        std::uint64_t my_edges = 0;
        for (;;) {
          const std::uint64_t i =
              cursor.fetch_add(1, std::memory_order_relaxed);
          if (i >= active.size()) break;
          const VertexId u = active[i];
          queued_.reset(u);  // may be re-queued by a later improvement
          ++my_relax;

          // Freshest value — another thread may lower it concurrently;
          // monotonicity keeps every observed value safe to propagate.
          const V u_value = atomic_load(&property[u]);
          const auto neighbors = csr.neighbors_of(u);
          const auto weights = csr.weights_of(u);
          my_edges += neighbors.size();
          for (std::size_t e = 0; e < neighbors.size(); ++e) {
            const VertexId v = neighbors[e];
            V msg = u_value;
            if constexpr (P::kWeight != simd::WeightOp::kNone) {
              msg = apply_weight_scalar<P::kWeight>(msg, weights[e]);
            }
            const bool lowered = atomic_combine(
                &property[v], msg,
                [](V a, V b) { return combine_scalar<P::kCombine>(a, b); });
            if (lowered && try_enqueue(v)) next.push_back(v);
          }
        }
        relaxations.fetch_add(my_relax, std::memory_order_relaxed);
        edge_visits.fetch_add(my_edges, std::memory_order_relaxed);
      });

      stats.relaxations += relaxations.load();
      stats.edge_visits += edge_visits.load();
      telemetry::count(telemetry_, 0, telemetry::Counter::kAsyncRelaxations,
                       relaxations.load());
      telemetry::count(telemetry_, 0, telemetry::Counter::kAsyncEdgeVisits,
                       edge_visits.load());

      active.clear();
      for (auto& buf : local_) {
        active.insert(active.end(), buf.begin(), buf.end());
        buf.clear();
      }
    }
    stats.total_seconds = timer.seconds();
    return stats;
  }

 private:
  /// Atomic test-and-set on the queued bitmask; true when this call
  /// transitioned the bit from 0 to 1 (the caller owns the enqueue).
  bool try_enqueue(VertexId v) { return queued_.test_and_set_atomic(v); }

  const Graph& graph_;
  ThreadPool pool_;
  DenseFrontier queued_;
  std::vector<std::vector<VertexId>> local_;
  telemetry::Telemetry* telemetry_ = nullptr;
};

}  // namespace grazelle
