// Shared per-graph state for re-entrant execution, now epoch-versioned
// (DESIGN.md §13–14): a GraphContext is a sequence of immutable Epochs.
// Each Epoch wraps one Graph together with every piece of derived
// read-only state the engine needs — NUMA partitions of the
// edge-vector array and cache-blocking indexes — cached per epoch so
// that many concurrent Sessions over the same epoch never rebuild or
// duplicate them.
//
// Mutation protocol: ingest() buffers edge insert/delete batches into
// a DeltaOverlay (journaling them to the backing .gzg container when
// it is format v4); publish() drains the overlay, materializes
// base ∪ overlay through the same apply_delta() path that
// `graph_convert --compact` uses, and atomically installs the result
// as a new head Epoch. In-flight Sessions keep the Epoch they pinned
// at construction (a shared_ptr snapshot), so a publish never perturbs
// a running session — old epochs are reclaimed when their last
// snapshot drops.
//
// Thread-safety: snapshot()/graph()/epoch() and every Epoch method are
// safe from any number of threads. ingest()/publish() serialize on an
// internal mutation mutex and may run concurrently with any reader.
// The head-swap is the only cross-thread handoff: readers never see a
// half-built epoch because the swap happens-after the full build.
#pragma once

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/options.h"
#include "graph/block_index.h"
#include "graph/delta_overlay.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "graph/store.h"

namespace grazelle {

/// Summary of one publish: what actually changed between the previous
/// head epoch and the new one.
struct DeltaReport {
  std::uint64_t epoch = 0;        ///< newly published epoch number
  std::uint64_t applied_ops = 0;  ///< canonical ops applied to the base
  std::uint64_t inserted = 0;     ///< effective edge inserts
  std::uint64_t deleted = 0;      ///< effective edge deletes
  /// Sorted unique sources of the effective inserts — incremental
  /// recompute's frontier seeds.
  std::vector<VertexId> touched_sources;
  bool insert_only = true;        ///< false ⇒ incremental CC/BFS must
                                  ///< fall back to a full recompute
};

/// Epoch-versioned graph handle: the "open once, query many, mutate in
/// batches" half of the Engine split (DESIGN.md §13). Sessions pin one
/// Epoch and hold only per-request mutable state.
class GraphContext {
 public:
  /// One immutable published generation: a graph plus its memoized
  /// derived state. All methods are const and thread-safe; the caches
  /// are keyed maps guarded by an internal mutex, and std::map's
  /// reference stability keeps returned references valid for the
  /// epoch's lifetime.
  class Epoch {
   public:
    Epoch(Graph graph, std::uint64_t number)
        : owned_(std::make_unique<Graph>(std::move(graph))),
          graph_(owned_.get()),
          number_(number) {}
    Epoch(const Graph* graph, std::uint64_t number)
        : graph_(graph), number_(number) {}

    Epoch(const Epoch&) = delete;
    Epoch& operator=(const Epoch&) = delete;

    [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }
    [[nodiscard]] std::uint64_t number() const noexcept { return number_; }

    /// NUMA split of the VSD edge-vector array for `nodes` nodes,
    /// computed once per node count and shared by every session pinned
    /// to this epoch.
    [[nodiscard]] const std::vector<NumaPiece>& numa_pieces(
        unsigned nodes) const {
      nodes = std::max(1u, nodes);
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = numa_cache_.find(nodes);
      if (it == numa_cache_.end()) {
        it = numa_cache_
                 .emplace(nodes,
                          partition_vector_sparse(graph_->vsd(), nodes))
                 .first;
      }
      return it->second;
    }

    /// Cache-block index for one source-range shift: the container's
    /// persisted index when its shift matches, else an epoch-cached
    /// build (first session with that shift pays; the rest share).
    /// Returns nullptr when the index is trivial — a single block, for
    /// which blocked execution would be pure overhead.
    [[nodiscard]] const BlockIndex* block_index(unsigned shift) const {
      const BlockIndex& persisted = graph_->vsd_blocks();
      if (persisted.present() && persisted.source_shift() == shift) {
        return persisted.trivial() ? nullptr : &persisted;
      }
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = block_cache_.find(shift);
      if (it == block_cache_.end()) {
        it = block_cache_
                 .emplace(shift, BlockIndex::build(graph_->vsd(), shift))
                 .first;
      }
      return it->second.trivial() ? nullptr : &it->second;
    }

   private:
    std::unique_ptr<Graph> owned_;  // null when borrowing (epoch 0 only)
    const Graph* graph_;
    std::uint64_t number_ = 0;

    mutable std::mutex mutex_;
    mutable std::map<unsigned, std::vector<NumaPiece>> numa_cache_;
    mutable std::map<unsigned, BlockIndex> block_cache_;
  };

  using Snapshot = std::shared_ptr<const Epoch>;

  /// Owning constructor: the context keeps the graph alive (moved in;
  /// for a packed container this is the zero-copy mmapped form).
  explicit GraphContext(Graph graph, std::string name = {})
      : head_(std::make_shared<Epoch>(std::move(graph), 0)),
        name_(std::move(name)),
        overlay_(head_->graph().num_vertices()) {}

  /// Borrowing constructor: the caller guarantees `graph` outlives the
  /// context (the one-shot Engine wrapper uses this).
  explicit GraphContext(const Graph* graph, std::string name = {})
      : head_(std::make_shared<Epoch>(graph, 0)),
        name_(std::move(name)),
        overlay_(graph->num_vertices()) {}

  /// Opens a packed .gzg container. When the container is format v4,
  /// any journal batches already on disk are replayed into the base
  /// before epoch 0 is built (through the same apply_delta path
  /// `graph_convert --compact` folds them with, so the served graph is
  /// bit-identical to the compacted container), and subsequently
  /// ingested batches are appended to the journal — mutations survive
  /// a restart. Pre-v4 containers serve fine but ingest memory-only.
  static GraphContext open(const std::string& path, std::string name = {}) {
    const store::StoreInfo info = store::inspect_store(path);
    return GraphContext(load_replayed(path, info),
                        name.empty() ? path : std::move(name),
                        info.version >= 4 ? path : std::string(),
                        info.journal_batches, path, info.version);
  }

  /// open() for shared ownership (the server's fleet). A context is
  /// immovable (it owns mutexes), so shared construction goes through
  /// here rather than make_shared(open(...)).
  [[nodiscard]] static std::shared_ptr<GraphContext> open_shared(
      const std::string& path, std::string name = {}) {
    const store::StoreInfo info = store::inspect_store(path);
    return std::shared_ptr<GraphContext>(
        new GraphContext(load_replayed(path, info),
                         name.empty() ? path : std::move(name),
                         info.version >= 4 ? path : std::string(),
                         info.journal_batches, path, info.version));
  }

  GraphContext(const GraphContext&) = delete;
  GraphContext& operator=(const GraphContext&) = delete;

  /// Pins the current head epoch. The returned snapshot (and every
  /// reference obtained through it) stays valid across any number of
  /// subsequent publishes.
  [[nodiscard]] Snapshot snapshot() const {
    std::lock_guard<std::mutex> lock(head_mutex_);
    return head_;
  }

  /// Head epoch's graph. Stable only until the next publish — callers
  /// that may race a mutator must hold a snapshot() instead.
  [[nodiscard]] const Graph& graph() const { return snapshot()->graph(); }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// Fixed at pack time; identical across epochs.
  [[nodiscard]] std::uint64_t num_vertices() const noexcept {
    return overlay_.num_vertices();
  }
  [[nodiscard]] std::uint64_t num_edges() const {
    return snapshot()->graph().num_edges();
  }
  /// Current head epoch number (0 until the first publish).
  [[nodiscard]] std::uint64_t epoch() const { return snapshot()->number(); }

  /// Head-epoch conveniences for single-epoch callers (tools, the
  /// one-shot Engine). Sessions route through their pinned epoch.
  [[nodiscard]] const std::vector<NumaPiece>& numa_pieces(
      unsigned nodes) const {
    return snapshot()->numa_pieces(nodes);
  }
  [[nodiscard]] const BlockIndex* block_index(unsigned shift) const {
    return snapshot()->block_index(shift);
  }

  // -- Mutation path (DESIGN.md §14) ----------------------------------

  /// Buffers a batch of edge insert/delete ops into the overlay,
  /// appending it to the backing container's delta journal first when
  /// journaling is on (validate → journal → buffer, so a journal
  /// failure leaves the overlay untouched). Throws
  /// std::invalid_argument on malformed ops, store::StoreError on
  /// journal I/O failure. Does not change what queries see — call
  /// publish() to install a new epoch.
  void ingest(std::span<const store::DeltaOp> ops) {
    std::lock_guard<std::mutex> lock(mutation_mutex_);
    DeltaOverlay::validate(ops, overlay_.num_vertices());
    if (!journal_path_.empty()) {
      store::append_delta_batch(journal_path_, ops);
      ++journal_batches_;
    }
    overlay_.ingest(ops);
  }

  /// Drains the overlay, materializes base ∪ overlay via apply_delta
  /// (the same path `graph_convert --compact` folds the journal with),
  /// and atomically installs the result as the new head epoch. An
  /// empty overlay publishes nothing and reports the current epoch.
  DeltaReport publish() {
    std::lock_guard<std::mutex> lock(mutation_mutex_);
    DeltaReport report;
    const Snapshot base = snapshot();
    report.epoch = base->number();
    if (overlay_.empty()) return report;

    const DeltaBatch batch = overlay_.drain();
    DeltaEffect effect = apply_delta(base->graph(), batch.ops);
    Graph next = Graph::build(std::move(effect.merged));
    // Preserve the pack-time lane choice: a base stripped to 4 lanes
    // (--lanes 4) stays stripped across publishes.
    if (!base->graph().vsd512().present()) next.set_vsd512(Vsd512Graph{});

    report.epoch = base->number() + 1;
    report.applied_ops = batch.ops.size();
    report.inserted = effect.inserted.size();
    report.deleted = effect.deleted.size();
    report.touched_sources = std::move(effect.touched_sources);
    report.insert_only = effect.insert_only;

    auto next_epoch = std::make_shared<Epoch>(std::move(next), report.epoch);
    {
      std::lock_guard<std::mutex> head_lock(head_mutex_);
      head_ = std::move(next_epoch);
    }
    return report;
  }

  /// Ops buffered but not yet published.
  [[nodiscard]] std::uint64_t pending_ops() const {
    std::lock_guard<std::mutex> lock(mutation_mutex_);
    return overlay_.pending_ops();
  }

  /// Whether ingested batches are journaled to a backing v4 container.
  [[nodiscard]] bool journaling() const noexcept {
    return !journal_path_.empty();
  }

  /// Journal batches in the backing container (those present at open
  /// plus every batch ingested since); 0 without journaling. This is
  /// the "journal depth" compaction folds away.
  [[nodiscard]] std::uint64_t journal_batches() const {
    std::lock_guard<std::mutex> lock(mutation_mutex_);
    return journal_batches_;
  }

  // -- Autotuning sidecar (DESIGN.md §15) -----------------------------

  /// The tuning seed for `algorithm` on *this* machine: anything
  /// recorded this process (freshest) wins, else the sidecar record
  /// loaded at open whose fingerprint matches, else an absent seed.
  /// Foreign-fingerprint and corrupt sidecar records never surface
  /// here — that is the "ignored, not fatal" contract.
  [[nodiscard]] TuningSeed tuning_for(const std::string& algorithm) const {
    std::lock_guard<std::mutex> lock(tuning_mutex_);
    if (auto it = learned_.find(algorithm); it != learned_.end()) {
      return it->second;
    }
    const store::TuningRecord* rec = store::find_tuning(
        tuning_profile_, algorithm, store::machine_tuning_fingerprint());
    if (rec == nullptr) return TuningSeed{};
    TuningSeed s;
    s.present = true;
    s.gating_divisor = rec->gating_divisor;
    s.block_shift = rec->block_shift;
    s.prefetch_distance = rec->prefetch_distance;
    s.pull_cycles_per_edge = rec->pull_cycles_per_edge;
    s.gated_pull_cycles_per_edge = rec->gated_pull_cycles_per_edge;
    s.push_cycles_per_edge = rec->push_cycles_per_edge;
    s.llc_misses_per_edge = rec->llc_misses_per_edge;
    s.samples = rec->samples;
    return s;
  }

  /// Records what an adaptive session learned (Session::
  /// learned_tuning()) so later sessions start warm and
  /// persist_tuning() can write it back. A seed with fewer samples
  /// than the one already held is discarded (never regress to a less-
  /// trusted model).
  void record_tuning(const std::string& algorithm, const TuningSeed& seed) {
    if (!seed.present || algorithm.empty()) return;
    std::lock_guard<std::mutex> lock(tuning_mutex_);
    auto it = learned_.find(algorithm);
    if (it == learned_.end() || seed.samples >= it->second.samples) {
      learned_[algorithm] = seed;
    }
  }

  /// Whether persist_tuning() can actually reach a sidecar (opened
  /// from a format-v5 container).
  [[nodiscard]] bool tuning_persistable() const noexcept {
    return !store_path_.empty() && store_version_ >= 5;
  }

  /// Best-effort write-back of every recorded seed to the container's
  /// tuning sidecar, keyed by this machine's fingerprint (the server
  /// calls this on graph close; graph_convert --tune calls it after
  /// its calibration runs). Returns records written; 0 when nothing
  /// was recorded or the container predates the sidecar. Write
  /// failures are swallowed — tuning is advisory, closing a graph must
  /// not throw.
  std::uint64_t persist_tuning() {
    std::lock_guard<std::mutex> lock(tuning_mutex_);
    if (!(!store_path_.empty() && store_version_ >= 5) || learned_.empty()) {
      return 0;
    }
    const std::uint64_t fp = store::machine_tuning_fingerprint();
    std::uint64_t written = 0;
    for (const auto& [algorithm, seed] : learned_) {
      store::TuningRecord rec;
      rec.algorithm = algorithm;
      rec.fingerprint = fp;
      rec.gating_divisor = seed.gating_divisor;
      rec.block_shift = seed.block_shift;
      rec.prefetch_distance = seed.prefetch_distance;
      rec.pull_cycles_per_edge = seed.pull_cycles_per_edge;
      rec.gated_pull_cycles_per_edge = seed.gated_pull_cycles_per_edge;
      rec.push_cycles_per_edge = seed.push_cycles_per_edge;
      rec.llc_misses_per_edge = seed.llc_misses_per_edge;
      rec.samples = seed.samples;
      try {
        store::write_tuning(store_path_, rec);
        ++written;
      } catch (const std::exception&) {
        break;
      }
    }
    return written;
  }

 private:
  /// Loads a container and folds its journal (if any) into the base.
  static Graph load_replayed(const std::string& path,
                             const store::StoreInfo& info) {
    Graph base = store::load_graph(path);
    if (info.journal_ops == 0) return base;
    const store::DeltaJournal journal = store::read_delta_journal(path);
    std::vector<store::DeltaOp> ops;
    ops.reserve(journal.total_ops);
    for (const auto& batch : journal.batches) {
      ops.insert(ops.end(), batch.begin(), batch.end());
    }
    DeltaEffect effect = apply_delta(base, ops);
    Graph next = Graph::build(std::move(effect.merged));
    if (!base.vsd512().present()) next.set_vsd512(Vsd512Graph{});
    return next;
  }

  GraphContext(Graph graph, std::string name, std::string journal_path,
               std::uint64_t journal_batches, std::filesystem::path store_path,
               std::uint32_t store_version)
      : head_(std::make_shared<Epoch>(std::move(graph), 0)),
        name_(std::move(name)),
        overlay_(head_->graph().num_vertices()),
        journal_path_(std::move(journal_path)),
        journal_batches_(journal_batches),
        store_path_(std::move(store_path)),
        store_version_(store_version) {
    if (store_version_ >= 5) {
      // Lenient by design: a stripped/corrupt sidecar reads as empty.
      tuning_profile_ = store::read_tuning(store_path_);
    }
  }

  mutable std::mutex head_mutex_;  // guards head_ swap/snapshot only
  Snapshot head_;
  std::string name_;

  mutable std::mutex mutation_mutex_;  // serializes ingest/publish
  DeltaOverlay overlay_;
  std::filesystem::path journal_path_;  // empty = journaling off
  std::uint64_t journal_batches_ = 0;

  std::filesystem::path store_path_;   // empty = not container-backed
  std::uint32_t store_version_ = 0;    // 0 = not container-backed
  mutable std::mutex tuning_mutex_;    // guards profile + learned seeds
  store::TuningProfile tuning_profile_;  // loaded at open (v5+)
  std::map<std::string, TuningSeed> learned_;  // algorithm → seed
};

}  // namespace grazelle
