// Shared, immutable per-graph state for re-entrant execution: one
// GraphContext wraps one Graph (owned, or borrowed from the caller)
// together with every piece of derived read-only state the engine
// needs — NUMA partitions of the edge-vector array and cache-blocking
// indexes — cached so that many concurrent Sessions over the same
// graph never rebuild or duplicate them.
//
// Thread-safety: all methods are const and safe to call from any
// number of threads. The derived-state caches are keyed maps guarded
// by an internal mutex; std::map guarantees reference stability, so
// the returned references/pointers stay valid for the context's
// lifetime and can be read lock-free by every Session thereafter.
// Nothing in a GraphContext is ever mutated after insertion — the
// mutex only serializes first-use construction.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "graph/block_index.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "graph/store.h"

namespace grazelle {

/// Const, shareable graph handle: the "open once, query many" half of
/// the Engine split (DESIGN.md §13). Sessions reference a context and
/// hold only per-request mutable state.
class GraphContext {
 public:
  /// Owning constructor: the context keeps the graph alive (moved in;
  /// for a packed container this is the zero-copy mmapped form).
  explicit GraphContext(Graph graph, std::string name = {})
      : owned_(std::make_unique<Graph>(std::move(graph))),
        graph_(owned_.get()),
        name_(std::move(name)) {}

  /// Borrowing constructor: the caller guarantees `graph` outlives the
  /// context (the one-shot Engine wrapper uses this).
  explicit GraphContext(const Graph* graph, std::string name = {})
      : graph_(graph), name_(std::move(name)) {}

  /// Opens a packed .gzg container zero-copy (or any loadable graph
  /// file path accepted by store::load_graph).
  static GraphContext open(const std::string& path, std::string name = {}) {
    return GraphContext(store::load_graph(path),
                        name.empty() ? path : std::move(name));
  }

  GraphContext(const GraphContext&) = delete;
  GraphContext& operator=(const GraphContext&) = delete;

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint64_t num_vertices() const noexcept {
    return graph_->num_vertices();
  }
  [[nodiscard]] std::uint64_t num_edges() const noexcept {
    return graph_->num_edges();
  }

  /// NUMA split of the VSD edge-vector array for `nodes` nodes,
  /// computed once per node count and shared by every session.
  [[nodiscard]] const std::vector<NumaPiece>& numa_pieces(
      unsigned nodes) const {
    nodes = std::max(1u, nodes);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = numa_cache_.find(nodes);
    if (it == numa_cache_.end()) {
      it = numa_cache_
               .emplace(nodes, partition_vector_sparse(graph_->vsd(), nodes))
               .first;
    }
    return it->second;
  }

  /// Cache-block index for one source-range shift: the container's
  /// persisted index when its shift matches, else a context-cached
  /// build (first session with that shift pays; the rest share).
  /// Returns nullptr when the index is trivial — a single block, for
  /// which blocked execution would be pure overhead.
  [[nodiscard]] const BlockIndex* block_index(unsigned shift) const {
    const BlockIndex& persisted = graph_->vsd_blocks();
    if (persisted.present() && persisted.source_shift() == shift) {
      return persisted.trivial() ? nullptr : &persisted;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = block_cache_.find(shift);
    if (it == block_cache_.end()) {
      it = block_cache_.emplace(shift, BlockIndex::build(graph_->vsd(), shift))
               .first;
    }
    return it->second.trivial() ? nullptr : &it->second;
  }

 private:
  std::unique_ptr<Graph> owned_;  // null when borrowing
  const Graph* graph_;
  std::string name_;

  mutable std::mutex mutex_;
  mutable std::map<unsigned, std::vector<NumaPiece>> numa_cache_;
  mutable std::map<unsigned, BlockIndex> block_cache_;
};

}  // namespace grazelle
