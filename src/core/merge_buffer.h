// The merge buffer of the scheduler-aware pull engine (paper §3):
// one slot per statically-defined chunk, holding the chunk's trailing
// partial aggregate (lastDest / lastValue). Written without any
// synchronization — each chunk id has exactly one owner — and folded
// into the shared accumulators by a single thread after the Edge phase.
#pragma once

#include <cstdint>

#include "platform/aligned_buffer.h"
#include "platform/types.h"
#include "threading/chunk_scheduler.h"

namespace grazelle {

template <typename V>
class MergeBuffer {
  struct alignas(kCacheLineBytes) Slot {
    VertexId last_dest;
    V last_value;
    bool used;
  };

 public:
  MergeBuffer() = default;

  /// Preallocates `num_chunks` slots. Reused across iterations via
  /// rearm().
  explicit MergeBuffer(std::uint64_t num_chunks) : slots_(num_chunks) {
    rearm();
  }

  void resize(std::uint64_t num_chunks) {
    if (slots_.size() < num_chunks) slots_.reset(num_chunks);
    rearm();
  }

  /// Marks every slot unused for the next Edge phase.
  void rearm() {
    for (auto& s : slots_) s.used = false;
  }

  /// Deposits chunk `chunk_id`'s trailing partial. Lock-free by
  /// construction: distinct chunks never share a slot.
  void deposit(std::uint64_t chunk_id, VertexId last_dest, V last_value) {
    Slot& s = slots_[chunk_id];
    s.last_dest = last_dest;
    s.last_value = last_value;
    s.used = true;
  }

  /// Folds every used slot into the shared accumulators:
  /// fn(dest, value) for each deposit, in chunk order. Sequential —
  /// the paper found this "extremely fast for the real-world graphs we
  /// studied" (§3, Benefits) and we quantify it in bench_fig05.
  template <typename Fn>
  void merge(Fn&& fn) const {
    for (const auto& s : slots_) {
      if (s.used) fn(s.last_dest, s.last_value);
    }
  }

  [[nodiscard]] std::uint64_t capacity() const noexcept {
    return slots_.size();
  }

  /// Number of deposits since the last rearm (diagnostics/tests).
  [[nodiscard]] std::uint64_t used_count() const noexcept {
    std::uint64_t n = 0;
    for (const auto& s : slots_) n += s.used ? 1 : 0;
    return n;
  }

 private:
  AlignedBuffer<Slot> slots_;
};

}  // namespace grazelle
