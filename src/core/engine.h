// The Grazelle hybrid engine (§5): alternates Edge and Vertex phases,
// selecting Edge-Push or Edge-Pull per iteration from the frontier
// state, with the scheduler-aware parallelized and AVX2-vectorized pull
// engine as the centerpiece.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/merge_buffer.h"
#include "frontier/sparse_frontier.h"
#include "core/program.h"
#include "core/pull_engine.h"
#include "core/push_engine.h"
#include "core/vertex_phase.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "platform/numa_topology.h"
#include "platform/timer.h"

namespace grazelle {

/// Which Edge-phase implementation the driver may pick.
enum class EngineSelect {
  kAuto,      ///< hybrid: frontier-density heuristic per iteration
  kPullOnly,  ///< always Edge-Pull
  kPushOnly,  ///< always Edge-Push
};

struct EngineOptions {
  unsigned num_threads = 1;
  /// Simulated NUMA nodes the threads divide into (see DESIGN.md §2).
  unsigned numa_nodes = 1;
  /// Edge vectors per scheduler chunk; 0 = Grazelle's default of
  /// 32 * num_threads equal chunks (§5).
  std::uint64_t chunk_vectors = 0;
  PullParallelism pull_mode = PullParallelism::kSchedulerAware;
  EngineSelect select = EngineSelect::kAuto;
  /// Extension beyond the paper (its §5 leaves frontier-representation
  /// switching to future work): when the frontier is very sparse, push
  /// from an explicit active-vertex list instead of scanning the
  /// bitmask.
  bool sparse_push = false;
  /// Frontier-size threshold (fraction of vertices, denominator) below
  /// which sparse push triggers: |F| < V / sparse_push_divisor.
  std::uint64_t sparse_push_divisor = 64;
  /// Extension: frontier-gated pull. When true, sparse pull iterations
  /// test each edge vector's precomputed source-occupancy span against
  /// the hierarchical frontier's summary and skip provably inactive
  /// vectors wholesale — converting the pull Edge phase from O(E) to
  /// O(E_touched + summary probes). A no-op for programs with
  /// kUsesFrontier == false.
  bool frontier_gating = false;
  /// Frontier-density threshold (denominator) below which the gate is
  /// applied: |F| * gating_divisor <= V. On denser frontiers nearly
  /// every span is occupied, so the gate would be pure overhead.
  std::uint64_t gating_divisor = 32;
  /// Beamer-threshold divisor the hybrid heuristic uses when gating is
  /// on (the classic heuristic pulls above num_edges/20; gating makes
  /// sparse pull cheap, so the pull band widens to num_edges/this).
  std::uint64_t gating_pull_divisor = 200;
};

struct IterationStats {
  bool used_pull = false;
  double edge_seconds = 0.0;
  double vertex_seconds = 0.0;
  double merge_seconds = 0.0;
  /// Load-imbalance tail wait inside the pull edge phase (threads *
  /// wall - busy); 0 for push iterations.
  double idle_seconds = 0.0;
  std::uint64_t frontier_size = 0;
  std::uint64_t changed = 0;
  /// Whether the frontier-occupancy gate was applied this iteration.
  bool gated = false;
  /// Edge vectors skipped by the occupancy gate (0 when not gated).
  std::uint64_t vectors_skipped = 0;
};

struct RunStats {
  unsigned iterations = 0;
  unsigned pull_iterations = 0;
  unsigned push_iterations = 0;
  unsigned sparse_push_iterations = 0;  // subset of push_iterations
  unsigned gated_iterations = 0;  // subset of pull_iterations
  std::uint64_t vectors_skipped = 0;  // total across gated iterations
  double total_seconds = 0.0;
  std::vector<IterationStats> per_iteration;
};

/// Compile-time-vectorized hybrid engine instance bound to one graph.
/// The same instance can run many programs / iterations; all large
/// state (accumulators, frontiers, merge buffer) is allocated once.
template <GraphProgram P, bool Vectorized>
class Engine {
 public:
  using V = typename P::Value;

  Engine(const Graph& graph, const EngineOptions& options)
      : graph_(graph),
        options_(options),
        topology_(options.numa_nodes,
                  std::max(1u, options.num_threads / std::max(1u, options.numa_nodes))),
        pool_(options.num_threads),
        vertex_phase_(pool_.size()),
        accum_(graph.num_vertices()),
        frontier_(graph.num_vertices()),
        next_frontier_(graph.num_vertices()),
        numa_pieces_(partition_vector_sparse(graph.vsd(), options.numa_nodes)) {
    for (const NumaPiece& piece : numa_pieces_) {
      const unsigned node = static_cast<unsigned>(&piece - numa_pieces_.data());
      topology_.record_allocation(node, piece.vectors.size() * sizeof(EdgeVector));
    }
  }

  /// Current frontier (mutable so callers seed it before run()).
  [[nodiscard]] DenseFrontier& frontier() noexcept { return frontier_; }

  [[nodiscard]] ThreadPool& pool() noexcept { return pool_; }

  [[nodiscard]] const NumaTopology& topology() const noexcept {
    return topology_;
  }

  [[nodiscard]] const std::vector<NumaPiece>& numa_pieces() const noexcept {
    return numa_pieces_;
  }

  /// Resets all accumulators to the program's identity. Must run once
  /// before the first Edge phase (the Vertex phase keeps them reset
  /// afterwards).
  void prime_accumulators(const P& prog) {
    parallel_for(pool_, accum_.size(), 65536,
                 [&](std::uint64_t v) { accum_[v] = prog.identity(); });
  }

  /// One Edge-Pull phase into the accumulators. Applies the occupancy
  /// gate per the engine options and current frontier density.
  void run_edge_pull(const P& prog) {
    run_edge_pull(prog,
                  should_gate(P::kUsesFrontier ? frontier_.count() : 0));
  }

  /// One Edge-Pull phase with an explicit gating decision (benchmarks
  /// use this to compare gated vs ungated on identical frontiers).
  void run_edge_pull(const P& prog, bool gated) {
    pull_phase_.run(prog, graph_.vsd(), accum_.span(),
                    P::kUsesFrontier ? &frontier_ : nullptr, pool_,
                    options_.pull_mode, options_.chunk_vectors, merge_buffer_,
                    gated);
  }

  /// Edge vectors the occupancy gate skipped during the most recent
  /// Edge-Pull phase.
  [[nodiscard]] std::uint64_t last_vectors_skipped() const noexcept {
    return pull_phase_.last_vectors_skipped();
  }

  /// Whether a pull iteration over a frontier of this size would apply
  /// the occupancy gate.
  [[nodiscard]] bool should_gate(std::uint64_t frontier_size) const noexcept {
    return options_.frontier_gating && P::kUsesFrontier &&
           frontier_size * options_.gating_divisor <= graph_.num_vertices();
  }

  /// One Edge-Push phase into the accumulators.
  void run_edge_push(const P& prog) {
    push_phase_.run(prog, graph_.vss(), accum_.span(),
                    P::kUsesFrontier ? &frontier_ : nullptr, pool_);
  }

  /// One Vertex phase; swaps in the next frontier.
  VertexPhaseResult run_vertex(P& prog) {
    const VertexPhaseResult r = vertex_phase_.run(
        prog, accum_.span(), graph_.out_degrees(), next_frontier_, pool_);
    frontier_.swap(next_frontier_);
    return r;
  }

  /// Full synchronous execution: iterates Edge+Vertex until the
  /// frontier empties (frontier-driven programs) or `max_iterations`
  /// is reached. The caller must have seeded frontier() and the
  /// program's state.
  RunStats run(P& prog, unsigned max_iterations) {
    RunStats stats;
    WallTimer total;
    prime_accumulators(prog);

    for (unsigned iter = 0; iter < max_iterations; ++iter) {
      IterationStats it;
      it.frontier_size = P::kUsesFrontier ? frontier_.count()
                                          : graph_.num_vertices();
      if (P::kUsesFrontier && it.frontier_size == 0) break;

      // Optional per-iteration hook: programs fold their global
      // variables (per-thread reduction slots) here, between the
      // previous Vertex phase's barrier and the next Edge phase.
      if constexpr (requires { prog.begin_iteration(); }) {
        prog.begin_iteration();
      }

      it.used_pull = choose_pull(it.frontier_size);

      WallTimer edge_timer;
      if (it.used_pull) {
        it.gated = should_gate(it.frontier_size);
        run_edge_pull(prog, it.gated);
        it.merge_seconds = pull_phase_.last_merge_seconds();
        it.idle_seconds = pull_phase_.last_idle_seconds();
        it.vectors_skipped = pull_phase_.last_vectors_skipped();
        if (it.gated) {
          ++stats.gated_iterations;
          stats.vectors_skipped += it.vectors_skipped;
        }
      } else if (options_.sparse_push && P::kUsesFrontier &&
                 it.frontier_size <
                     graph_.num_vertices() / options_.sparse_push_divisor) {
        const SparseFrontier sparse = SparseFrontier::from_dense(frontier_);
        push_phase_.run_sparse(prog, graph_.vss(), accum_.span(),
                               sparse.vertices(), pool_);
        ++stats.sparse_push_iterations;
      } else {
        run_edge_push(prog);
      }
      it.edge_seconds = edge_timer.seconds();

      WallTimer vertex_timer;
      const VertexPhaseResult vr = run_vertex(prog);
      it.vertex_seconds = vertex_timer.seconds();
      it.changed = vr.changed;
      last_active_out_edges_ = vr.active_out_edges;

      ++stats.iterations;
      (it.used_pull ? stats.pull_iterations : stats.push_iterations) += 1;
      stats.per_iteration.push_back(it);

      if (P::kUsesFrontier && vr.changed == 0) break;
    }
    stats.total_seconds = total.seconds();
    return stats;
  }

 private:
  [[nodiscard]] bool choose_pull(std::uint64_t frontier_size) const {
    switch (options_.select) {
      case EngineSelect::kPullOnly:
        return true;
      case EngineSelect::kPushOnly:
        return false;
      case EngineSelect::kAuto:
        break;
    }
    if (!P::kUsesFrontier) return true;
    // Beamer-style direction heuristic: pull once the frontier's edge
    // work is a substantial fraction of the graph. With frontier gating
    // on, sparse pull iterations skip most edge vectors outright, so
    // the pull band widens (a larger divisor lowers the threshold).
    const std::uint64_t divisor =
        options_.frontier_gating ? options_.gating_pull_divisor : 20;
    return should_use_dense(frontier_size, last_active_out_edges_,
                            graph_.num_edges(), divisor);
  }

  const Graph& graph_;
  EngineOptions options_;
  NumaTopology topology_;
  ThreadPool pool_;
  PullEdgePhase<P, Vectorized> pull_phase_;
  PushEdgePhase<P, Vectorized> push_phase_;
  VertexPhase<P> vertex_phase_;
  MergeBuffer<V> merge_buffer_;
  AlignedBuffer<V> accum_;
  DenseFrontier frontier_;
  DenseFrontier next_frontier_;
  std::vector<NumaPiece> numa_pieces_;
  // 0 so the first iteration's direction choice rests on the frontier
  // size alone (a single-seed BFS must start with a push, a full
  // frontier with a pull).
  std::uint64_t last_active_out_edges_ = 0;
};

}  // namespace grazelle
