// One-shot hybrid engine (§5): the historical own-everything entry
// point, now a thin shell over the GraphContext/Session split
// (DESIGN.md §13). An Engine is exactly a private GraphContext that
// borrows the caller's graph plus a public Session bound to it — the
// full Session API (frontier seeding, plan/run_edge_phase, run,
// telemetry, blocking/gating/lane introspection) is inherited
// unchanged, so single-run drivers, tests, and benchmarks keep the
// "construct, seed, run, drop" shape they always had.
//
// Long-lived callers that serve many requests over one graph should
// hold a GraphContext themselves and construct Sessions per request
// (core/session.h); that is what tools/grazelle_serve.cpp does.
#pragma once

#include "core/graph_context.h"
#include "core/session.h"

namespace grazelle {

namespace detail {

/// Holds the Engine's own GraphContext in a base so it is fully
/// constructed before the Session base that references it (bases
/// initialize in declaration order) and destroyed after it.
struct OwnedGraphContext {
  // Not named `context`: the Session base exposes a context() accessor
  // and unqualified lookup through Engine must resolve to it.
  GraphContext owned_context;
};

}  // namespace detail

/// Compile-time-vectorized hybrid engine instance bound to one graph.
/// The same instance can run many programs / iterations; all large
/// state (accumulators, frontiers, merge buffer) is allocated once.
template <GraphProgram P, bool Vectorized>
class Engine : private detail::OwnedGraphContext,
               public Session<P, Vectorized> {
 public:
  /// `graph` is borrowed and must outlive the engine.
  Engine(const Graph& graph, const EngineOptions& options)
      : detail::OwnedGraphContext{GraphContext(&graph)},
        Session<P, Vectorized>(detail::OwnedGraphContext::owned_context,
                               options) {}
};

}  // namespace grazelle
