// GraphMat-pattern baseline (Sundaram et al., VLDB'15): graph
// computation mapped onto generalized sparse-matrix-vector
// multiplication. Structure reproduced:
//  * one iteration = y := A^T ⊗ x over a (process_message, reduce)
//    semiring, where x is the vector of active-vertex messages and A
//    the adjacency matrix in Compressed-Sparse form;
//  * the engine is PUSH-based, like the original — the Grazelle paper
//    notes "GraphMat does not contain a pull-based engine" (§6.3):
//    the multiply walks the active columns of A (sources) and scatters
//    partial products into y with atomic reduces;
//  * the frontier is a membership bitmap consulted per column; every
//    iteration still scans the full vertex range, which is the
//    frontier-handling inefficiency the paper measures in Figs 12-13;
//  * apply() then updates vertex state from y, exactly GraphMat's
//    SEND_MESSAGE / PROCESS_MESSAGE / REDUCE / APPLY pipeline.
#pragma once

#include <cstdint>

#include "core/program.h"
#include "core/vertex_phase.h"
#include "threading/atomics.h"
#include "frontier/dense_frontier.h"
#include "graph/graph.h"
#include "platform/aligned_buffer.h"
#include "threading/parallel_for.h"

namespace grazelle::baselines::graphmat {

struct GraphMatConfig {
  unsigned num_threads = 1;
  std::uint64_t grain = 64;
};

template <GraphProgram P>
class GraphMatEngine {
 public:
  using V = typename P::Value;

  GraphMatEngine(const Graph& graph, const GraphMatConfig& config)
      : graph_(graph),
        config_(config),
        pool_(config.num_threads),
        vertex_phase_(pool_.size()),
        accum_(graph.num_vertices()),
        frontier_(graph.num_vertices()),
        next_frontier_(graph.num_vertices()) {}

  [[nodiscard]] DenseFrontier& frontier() noexcept { return frontier_; }
  [[nodiscard]] ThreadPool& pool() noexcept { return pool_; }

  unsigned run(P& prog, unsigned max_iterations) {
    parallel_for(pool_, accum_.size(), 65536,
                 [&](std::uint64_t v) { accum_[v] = prog.identity(); });
    unsigned iterations = 0;
    for (unsigned iter = 0; iter < max_iterations; ++iter) {
      const std::uint64_t frontier_size =
          P::kUsesFrontier ? frontier_.count() : graph_.num_vertices();
      if (P::kUsesFrontier && frontier_size == 0) break;
      if constexpr (requires { prog.begin_iteration(); }) {
        prog.begin_iteration();
      }

      spmv(prog);

      const VertexPhaseResult vr = vertex_phase_.run(
          prog, accum_.span(), graph_.out_degrees(), next_frontier_, pool_);
      frontier_.swap(next_frontier_);
      ++iterations;
      if (P::kUsesFrontier && vr.changed == 0) break;
    }
    return iterations;
  }

 private:
  /// y := A^T ⊗ x, push-style: walk the columns of A (sources, CSR),
  /// test the sparse vector's membership bitmap per column, and
  /// scatter partial products into y with atomic reduces. The column
  /// scan covers the whole vertex range every iteration — GraphMat's
  /// frontier weakness the paper measures in Figures 12-13.
  void spmv(const P& prog) {
    const CompressedSparse& csr = graph_.csr();
    parallel_for(pool_, graph_.num_vertices(), config_.grain,
                 [&](std::uint64_t src) {
      if (P::kUsesFrontier && !frontier_.test(src)) return;
      V msg_base;
      if constexpr (P::kMessageIsSourceId) {
        msg_base = static_cast<V>(src);
      } else {
        msg_base = prog.message_array()[src];
      }
      for (EdgeIndex e = csr.offsets()[src]; e < csr.offsets()[src + 1];
           ++e) {
        const VertexId dst = csr.neighbors()[e];
        if constexpr (P::kUsesConvergedSet) {
          if (prog.skip_destination(dst)) continue;
        }
        V msg = msg_base;
        if constexpr (P::kWeight != simd::WeightOp::kNone) {
          msg = apply_weight_scalar<P::kWeight>(msg, csr.weights()[e]);
        }
        atomic_combine<program_force_writes<P>()>(
            &accum_[dst], msg,
            [](V a, V b) { return combine_scalar<P::kCombine>(a, b); });
      }
    });
  }

  const Graph& graph_;
  GraphMatConfig config_;
  ThreadPool pool_;
  VertexPhase<P> vertex_phase_;
  AlignedBuffer<V> accum_;
  DenseFrontier frontier_;
  DenseFrontier next_frontier_;
};

}  // namespace grazelle::baselines::graphmat
