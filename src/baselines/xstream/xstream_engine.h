// X-Stream-pattern baseline (Roy, Mihailovic & Zwaenepoel, SOSP'13):
// edge-centric scatter-gather over streaming partitions. Structure
// reproduced:
//  * vertices are divided into K cache-sized streaming partitions; the
//    unordered edge list is grouped only by *source* partition;
//  * Scatter streams every edge of every partition (edge-centric: no
//    per-vertex index, inactive sources are filtered per edge) and
//    appends updates {dst, value} into per-(source-partition,
//    destination-partition) buffers — the in-memory shuffle;
//  * Gather streams each destination partition's update buffers and
//    folds them into that partition's accumulators, without atomics
//    (destination partitions are disjoint);
//  * like the original, the thread count is rounded down to a power of
//    two (the paper's footnote 1: X-Stream could use only 16 of 28
//    logical cores per socket).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/program.h"
#include "platform/bits.h"
#include "core/vertex_phase.h"
#include "frontier/dense_frontier.h"
#include "graph/graph.h"
#include "platform/aligned_buffer.h"
#include "threading/parallel_for.h"

namespace grazelle::baselines::xstream {

struct XStreamConfig {
  unsigned num_threads = 1;
  /// Number of streaming partitions (0 = pick from vertex count so a
  /// partition's vertex state is roughly cache-sized).
  unsigned num_partitions = 0;
};

template <GraphProgram P>
class XStreamEngine {
 public:
  using V = typename P::Value;

  XStreamEngine(const Graph& graph, const XStreamConfig& config)
      : graph_(graph),
        pool_(round_down_pow2(config.num_threads)),
        vertex_phase_(pool_.size()),
        accum_(graph.num_vertices()),
        frontier_(graph.num_vertices()),
        next_frontier_(graph.num_vertices()) {
    num_partitions_ = config.num_partitions != 0
                          ? config.num_partitions
                          : default_partitions(graph.num_vertices());
    build_streaming_partitions();
    updates_.resize(num_partitions_);
    for (auto& row : updates_) row.resize(num_partitions_);
  }

  [[nodiscard]] DenseFrontier& frontier() noexcept { return frontier_; }
  [[nodiscard]] ThreadPool& pool() noexcept { return pool_; }
  [[nodiscard]] unsigned num_partitions() const noexcept {
    return num_partitions_;
  }

  unsigned run(P& prog, unsigned max_iterations) {
    parallel_for(pool_, accum_.size(), 65536,
                 [&](std::uint64_t v) { accum_[v] = prog.identity(); });
    unsigned iterations = 0;
    for (unsigned iter = 0; iter < max_iterations; ++iter) {
      const std::uint64_t frontier_size =
          P::kUsesFrontier ? frontier_.count() : graph_.num_vertices();
      if (P::kUsesFrontier && frontier_size == 0) break;
      if constexpr (requires { prog.begin_iteration(); }) {
        prog.begin_iteration();
      }

      scatter(prog);
      gather(prog);

      const VertexPhaseResult vr = vertex_phase_.run(
          prog, accum_.span(), graph_.out_degrees(), next_frontier_, pool_);
      frontier_.swap(next_frontier_);
      ++iterations;
      if (P::kUsesFrontier && vr.changed == 0) break;
    }
    return iterations;
  }

 private:
  struct Update {
    VertexId dst;
    V value;
  };

  struct StreamEdge {
    VertexId src;
    VertexId dst;
    Weight weight;
  };

  static unsigned round_down_pow2(unsigned n) {
    unsigned p = 1;
    while (p * 2 <= std::max(1u, n)) p *= 2;
    return p;
  }

  static unsigned default_partitions(std::uint64_t num_vertices) {
    // Target ~64K vertices of state per partition (cache-sized), at
    // least one partition.
    return static_cast<unsigned>(
        std::max<std::uint64_t>(1, bits::ceil_div(num_vertices,
                                                  std::uint64_t{65536})));
  }

  [[nodiscard]] unsigned partition_of(VertexId v) const noexcept {
    return static_cast<unsigned>(v / vertices_per_partition_);
  }

  void build_streaming_partitions() {
    vertices_per_partition_ = bits::ceil_div(
        std::max<std::uint64_t>(1, graph_.num_vertices()),
        std::uint64_t{num_partitions_});
    edges_.resize(num_partitions_);
    const auto& list_edges = graph_.csr();
    for (VertexId src = 0; src < graph_.num_vertices(); ++src) {
      const auto neighbors = list_edges.neighbors_of(src);
      const auto weights = list_edges.weights_of(src);
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        edges_[partition_of(src)].push_back(
            {src, neighbors[i], weights.empty() ? Weight{0} : weights[i]});
      }
    }
  }

  /// Streams every edge of every source partition, appending updates
  /// into the shuffle buffers. Partitions are processed in parallel;
  /// each (p, q) buffer has a single writer, so no locking.
  void scatter(const P& prog) {
    parallel_for(pool_, num_partitions_, 1, [&](std::uint64_t p) {
      for (auto& buffer : updates_[p]) buffer.clear();
      for (const StreamEdge& e : edges_[p]) {
        if (P::kUsesFrontier && !frontier_.test(e.src)) continue;
        if constexpr (P::kUsesConvergedSet) {
          if (prog.skip_destination(e.dst)) continue;
        }
        V msg;
        if constexpr (P::kMessageIsSourceId) {
          msg = static_cast<V>(e.src);
        } else {
          msg = prog.message_array()[e.src];
        }
        if constexpr (P::kWeight != simd::WeightOp::kNone) {
          msg = apply_weight_scalar<P::kWeight>(msg, e.weight);
        }
        updates_[p][partition_of(e.dst)].push_back({e.dst, msg});
      }
    });
  }

  /// Streams each destination partition's update buffers into its
  /// accumulators — destination partitions are disjoint, so writes are
  /// unsynchronized.
  void gather(const P& prog) {
    (void)prog;
    parallel_for(pool_, num_partitions_, 1, [&](std::uint64_t q) {
      for (unsigned p = 0; p < num_partitions_; ++p) {
        for (const Update& u : updates_[p][q]) {
          accum_[u.dst] =
              combine_scalar<P::kCombine>(accum_[u.dst], u.value);
        }
      }
    });
  }

  const Graph& graph_;
  ThreadPool pool_;
  VertexPhase<P> vertex_phase_;
  AlignedBuffer<V> accum_;
  DenseFrontier frontier_;
  DenseFrontier next_frontier_;
  unsigned num_partitions_ = 1;
  std::uint64_t vertices_per_partition_ = 1;
  std::vector<std::vector<StreamEdge>> edges_;
  std::vector<std::vector<std::vector<Update>>> updates_;
};

}  // namespace grazelle::baselines::xstream
