// Ligra-pattern baseline (Shun & Blelloch, PPoPP'13), reimplemented
// from its published engine structure for the paper's comparisons.
//
// Structure reproduced:
//  * Compressed-Sparse (scalar CSR/CSC) edge traversal — no
//    Vector-Sparse, no scheduler awareness;
//  * edgeMap with direction switching between a sparse (push) and a
//    dense (pull) traversal using the |F| + outdeg(F) > m/20 heuristic;
//  * sparse and dense frontier representations (`dense_only` disables
//    the sparse one, giving the paper's Ligra-Dense variant, §6.3);
//  * the loop-parallelization configurations of Figure 1: inner loops
//    parallelized by flattening to edge granularity, with atomic
//    combines (PushP / PullP), without them (PullP-NoSync), or not at
//    all (PushS / PullS — outer loop only).
#pragma once

#include <cstdint>
#include <vector>

#include "core/program.h"
#include "core/vertex_phase.h"
#include "frontier/dense_frontier.h"
#include "frontier/sparse_frontier.h"
#include "graph/graph.h"
#include "platform/aligned_buffer.h"
#include "threading/atomics.h"
#include "threading/parallel_for.h"

namespace grazelle::baselines::ligra {

/// Inner-loop treatment for the pull direction (Figure 1's Pull* bars).
enum class PullInner {
  kNone,            ///< no pull engine at all (PushS / PushP configs)
  kSerial,          ///< outer loop parallel, inner serial (PullS)
  kParallel,        ///< edge-granular parallel + atomics (PullP)
  kParallelNoSync,  ///< edge-granular parallel, racy (PullP-NoSync)
};

struct LigraConfig {
  unsigned num_threads = 1;
  /// PushP (edge-granular parallel push) vs PushS (vertex-granular).
  bool push_inner_parallel = true;
  PullInner pull = PullInner::kSerial;
  /// Ligra-Dense: keep direction switching but only the dense frontier
  /// representation.
  bool dense_only = false;
  std::uint64_t grain = 1024;
};

struct LigraRunStats {
  unsigned iterations = 0;
  unsigned sparse_push_iterations = 0;
  unsigned dense_push_iterations = 0;
  unsigned pull_iterations = 0;
};

template <GraphProgram P>
class LigraEngine {
 public:
  using V = typename P::Value;

  LigraEngine(const Graph& graph, const LigraConfig& config)
      : graph_(graph),
        config_(config),
        pool_(config.num_threads),
        vertex_phase_(pool_.size()),
        accum_(graph.num_vertices()),
        frontier_(graph.num_vertices()),
        next_frontier_(graph.num_vertices()),
        pull_edge_dst_(graph.num_edges()),
        push_edge_src_(graph.num_edges()) {
    // Flattened per-edge top-level ids, enabling edge-granular
    // parallelization of the "inner" loops.
    materialize_top_level(graph.csc(), pull_edge_dst_);
    materialize_top_level(graph.csr(), push_edge_src_);
  }

  [[nodiscard]] DenseFrontier& frontier() noexcept { return frontier_; }
  [[nodiscard]] ThreadPool& pool() noexcept { return pool_; }

  /// Synchronous execution loop, mirroring Engine::run.
  LigraRunStats run(P& prog, unsigned max_iterations) {
    LigraRunStats stats;
    prime_accumulators(prog);
    for (unsigned iter = 0; iter < max_iterations; ++iter) {
      const std::uint64_t frontier_size =
          P::kUsesFrontier ? frontier_.count() : graph_.num_vertices();
      if (P::kUsesFrontier && frontier_size == 0) break;

      if constexpr (requires { prog.begin_iteration(); }) {
        prog.begin_iteration();
      }

      const bool dense = choose_dense(frontier_size);
      if (dense && config_.pull != PullInner::kNone) {
        edge_map_pull(prog);
        ++stats.pull_iterations;
      } else if (!dense && !config_.dense_only) {
        edge_map_sparse_push(prog);
        ++stats.sparse_push_iterations;
      } else {
        edge_map_dense_push(prog);
        ++stats.dense_push_iterations;
      }

      const VertexPhaseResult vr = vertex_phase_.run(
          prog, accum_.span(), graph_.out_degrees(), next_frontier_, pool_);
      frontier_.swap(next_frontier_);
      last_active_out_edges_ = vr.active_out_edges;
      ++stats.iterations;
      if (P::kUsesFrontier && vr.changed == 0) break;
    }
    return stats;
  }

 private:
  static void materialize_top_level(const CompressedSparse& adj,
                                    AlignedBuffer<VertexId>& out) {
    for (VertexId top = 0; top < adj.num_vertices(); ++top) {
      for (EdgeIndex e = adj.offsets()[top]; e < adj.offsets()[top + 1];
           ++e) {
        out[e] = top;
      }
    }
  }

  void prime_accumulators(const P& prog) {
    parallel_for(pool_, accum_.size(), 65536,
                 [&](std::uint64_t v) { accum_[v] = prog.identity(); });
  }

  [[nodiscard]] bool choose_dense(std::uint64_t frontier_size) const {
    if (!P::kUsesFrontier) return true;
    return should_use_dense(frontier_size, last_active_out_edges_,
                            graph_.num_edges());
  }

  [[nodiscard]] V message_of(const P& prog, VertexId src,
                             EdgeIndex e, const CompressedSparse& adj) const {
    V msg;
    if constexpr (P::kMessageIsSourceId) {
      msg = static_cast<V>(src);
    } else {
      msg = prog.message_array()[src];
    }
    if constexpr (P::kWeight != simd::WeightOp::kNone) {
      msg = apply_weight_scalar<P::kWeight>(msg, adj.weights()[e]);
    }
    return msg;
  }

  /// edgeMapSparse: materialize the sparse frontier and push from it,
  /// one active vertex per task.
  void edge_map_sparse_push(const P& prog) {
    const SparseFrontier sparse = SparseFrontier::from_dense(frontier_);
    const auto& active = sparse.vertices();
    const CompressedSparse& csr = graph_.csr();
    parallel_for(pool_, active.size(), 16, [&](std::uint64_t i) {
      const VertexId src = active[i];
      for (EdgeIndex e = csr.offsets()[src]; e < csr.offsets()[src + 1];
           ++e) {
        push_edge(prog, src, csr.neighbors()[e], e, csr);
      }
    });
  }

  /// Dense push: outer loop over all sources (PushS) or flattened over
  /// edges (PushP).
  void edge_map_dense_push(const P& prog) {
    const CompressedSparse& csr = graph_.csr();
    if (config_.push_inner_parallel) {
      parallel_for(pool_, graph_.num_edges(), config_.grain,
                   [&](std::uint64_t e) {
        const VertexId src = push_edge_src_[e];
        if (P::kUsesFrontier && !frontier_.test(src)) return;
        push_edge(prog, src, csr.neighbors()[e], e, csr);
      });
    } else {
      parallel_for(pool_, graph_.num_vertices(), 64, [&](std::uint64_t src) {
        if (P::kUsesFrontier && !frontier_.test(src)) return;
        for (EdgeIndex e = csr.offsets()[src]; e < csr.offsets()[src + 1];
             ++e) {
          push_edge(prog, src, csr.neighbors()[e], e, csr);
        }
      });
    }
  }

  void push_edge(const P& prog, VertexId src, VertexId dst, EdgeIndex e,
                 const CompressedSparse& csr) {
    if constexpr (P::kUsesConvergedSet) {
      if (prog.skip_destination(dst)) return;
    }
    atomic_combine<program_force_writes<P>()>(
        &accum_[dst], message_of(prog, src, e, csr),
        [](V a, V b) { return combine_scalar<P::kCombine>(a, b); });
  }

  /// edgeMapDense, pull direction: iterate destinations and their
  /// in-edges, with the inner loop treated per the Figure 1 configs.
  void edge_map_pull(const P& prog) {
    const CompressedSparse& csc = graph_.csc();
    switch (config_.pull) {
      case PullInner::kNone:
        break;
      case PullInner::kSerial:
        parallel_for(pool_, graph_.num_vertices(), 64,
                     [&](std::uint64_t dst) {
          if constexpr (P::kUsesConvergedSet) {
            if (prog.skip_destination(dst)) return;
          }
          V acc = prog.identity();
          for (EdgeIndex e = csc.offsets()[dst]; e < csc.offsets()[dst + 1];
               ++e) {
            const VertexId src = csc.neighbors()[e];
            if (P::kUsesFrontier && !frontier_.test(src)) continue;
            acc = combine_scalar<P::kCombine>(acc,
                                              message_of(prog, src, e, csc));
          }
          accum_[dst] = acc;
        });
        break;
      case PullInner::kParallel:
      case PullInner::kParallelNoSync: {
        const bool atomic = config_.pull == PullInner::kParallel;
        parallel_for(pool_, graph_.num_edges(), config_.grain,
                     [&](std::uint64_t e) {
          const VertexId dst = pull_edge_dst_[e];
          if constexpr (P::kUsesConvergedSet) {
            if (prog.skip_destination(dst)) return;
          }
          const VertexId src = csc.neighbors()[e];
          if (P::kUsesFrontier && !frontier_.test(src)) return;
          const V msg = message_of(prog, src, e, csc);
          if (atomic) {
            atomic_combine<program_force_writes<P>()>(
                &accum_[dst], msg,
                [](V a, V b) { return combine_scalar<P::kCombine>(a, b); });
          } else {
            accum_[dst] = combine_scalar<P::kCombine>(accum_[dst], msg);
          }
        });
        break;
      }
    }
  }

  const Graph& graph_;
  LigraConfig config_;
  ThreadPool pool_;
  VertexPhase<P> vertex_phase_;
  AlignedBuffer<V> accum_;
  DenseFrontier frontier_;
  DenseFrontier next_frontier_;
  AlignedBuffer<VertexId> pull_edge_dst_;
  AlignedBuffer<VertexId> push_edge_src_;
  // 0: first-iteration direction from frontier size alone (see
  // core/engine.h).
  std::uint64_t last_active_out_edges_ = 0;
};

}  // namespace grazelle::baselines::ligra
