// Polymer-pattern baseline (Zhang, Chen & Chen, PPoPP'15): a
// NUMA-aware derivative of Ligra. Structure reproduced:
//  * the graph is partitioned by destination-vertex ranges across
//    (simulated) NUMA nodes; each node holds the in-edges of the
//    vertices it owns plus its own slice of the property arrays;
//  * each node's threads process only node-local edges and write only
//    node-local accumulators, so cross-node write traffic is limited to
//    reading remote source values (Polymer's "virtual vertex array"
//    placement, cited by the paper in §5);
//  * within a node the engine is Ligra-like Compressed-Sparse with a
//    serial inner loop — no Vector-Sparse, no scheduler awareness.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/program.h"
#include "core/vertex_phase.h"
#include "frontier/dense_frontier.h"
#include "graph/graph.h"
#include "platform/aligned_buffer.h"
#include "platform/numa_topology.h"
#include "threading/parallel_for.h"

namespace grazelle::baselines::polymer {

struct PolymerConfig {
  unsigned num_threads = 1;
  unsigned numa_nodes = 1;
  std::uint64_t grain = 64;
};

template <GraphProgram P>
class PolymerEngine {
 public:
  using V = typename P::Value;

  PolymerEngine(const Graph& graph, const PolymerConfig& config)
      : graph_(graph),
        config_(config),
        topology_(config.numa_nodes,
                  std::max(1u, config.num_threads /
                                   std::max(1u, config.numa_nodes))),
        pool_(topology_.num_threads()),
        vertex_phase_(pool_.size()),
        accum_(graph.num_vertices()),
        frontier_(graph.num_vertices()),
        next_frontier_(graph.num_vertices()) {
    // Destination-range partitioning: node i owns a contiguous vertex
    // range (and therefore a contiguous CSC edge range).
    for (unsigned node = 0; node < config.numa_nodes; ++node) {
      vertex_ranges_.push_back(
          topology_.node_range(node, graph.num_vertices()));
      topology_.record_allocation(
          node, (graph.csc().offsets()[vertex_ranges_.back().end] -
                 graph.csc().offsets()[vertex_ranges_.back().begin]) *
                    sizeof(VertexId));
    }
  }

  [[nodiscard]] DenseFrontier& frontier() noexcept { return frontier_; }
  [[nodiscard]] ThreadPool& pool() noexcept { return pool_; }
  [[nodiscard]] const NumaTopology& topology() const noexcept {
    return topology_;
  }

  unsigned run(P& prog, unsigned max_iterations) {
    parallel_for(pool_, accum_.size(), 65536,
                 [&](std::uint64_t v) { accum_[v] = prog.identity(); });
    unsigned iterations = 0;
    for (unsigned iter = 0; iter < max_iterations; ++iter) {
      const std::uint64_t frontier_size =
          P::kUsesFrontier ? frontier_.count() : graph_.num_vertices();
      if (P::kUsesFrontier && frontier_size == 0) break;
      if constexpr (requires { prog.begin_iteration(); }) {
        prog.begin_iteration();
      }

      edge_phase(prog);

      const VertexPhaseResult vr = vertex_phase_.run(
          prog, accum_.span(), graph_.out_degrees(), next_frontier_, pool_);
      frontier_.swap(next_frontier_);
      ++iterations;
      if (P::kUsesFrontier && vr.changed == 0) break;
    }
    return iterations;
  }

 private:
  /// Each thread works only on the vertex range its NUMA node owns —
  /// writes are node-local by construction, no atomics needed.
  void edge_phase(const P& prog) {
    const CompressedSparse& csc = graph_.csc();
    pool_.run([&](unsigned tid) {
      const unsigned node = topology_.node_of_thread(tid);
      const IndexRange owned = vertex_ranges_[node];
      // Node-local static interleaving across the node's threads.
      const unsigned local = topology_.local_id(tid);
      const unsigned per_node = topology_.threads_per_node();
      for (VertexId dst = owned.begin + local; dst < owned.end;
           dst += per_node) {
        if constexpr (P::kUsesConvergedSet) {
          if (prog.skip_destination(dst)) continue;
        }
        V acc = prog.identity();
        for (EdgeIndex e = csc.offsets()[dst]; e < csc.offsets()[dst + 1];
             ++e) {
          const VertexId src = csc.neighbors()[e];
          if (P::kUsesFrontier && !frontier_.test(src)) continue;
          V msg;
          if constexpr (P::kMessageIsSourceId) {
            msg = static_cast<V>(src);
          } else {
            msg = prog.message_array()[src];
          }
          if constexpr (P::kWeight != simd::WeightOp::kNone) {
            msg = apply_weight_scalar<P::kWeight>(msg, csc.weights()[e]);
          }
          acc = combine_scalar<P::kCombine>(acc, msg);
        }
        accum_[dst] = acc;
      }
    });
  }

  const Graph& graph_;
  PolymerConfig config_;
  NumaTopology topology_;
  ThreadPool pool_;
  VertexPhase<P> vertex_phase_;
  AlignedBuffer<V> accum_;
  DenseFrontier frontier_;
  DenseFrontier next_frontier_;
  std::vector<IndexRange> vertex_ranges_;
};

}  // namespace grazelle::baselines::polymer
